//! End-to-end: generate a small TPC-H database and run all 22 queries.

use wimpi_queries::{query, run, CHOKEPOINT_QUERIES};
use wimpi_storage::{Catalog, Value};
use wimpi_tpch::Generator;

fn catalog() -> Catalog {
    Generator::new(0.01).generate_catalog().expect("generation succeeds")
}

#[test]
fn all_queries_execute_at_sf_001() {
    let cat = catalog();
    for n in 1..=22 {
        let q = query(n);
        let (rel, prof) = run(&q, &cat).unwrap_or_else(|e| panic!("Q{n} failed: {e}"));
        assert!(rel.num_columns() > 0, "Q{n} returned no columns");
        assert!(prof.cpu_ops > 0, "Q{n} recorded no work");
    }
}

#[test]
fn q1_covers_nearly_all_lineitem() {
    let cat = catalog();
    let (rel, _) = run(&query(1), &cat).unwrap();
    // Four (returnflag, linestatus) groups: A/F, N/F, N/O, R/F.
    assert_eq!(rel.num_rows(), 4);
    let total: i64 = rel.column("count_order").unwrap().as_i64().unwrap().iter().sum();
    let lineitem_rows = cat.table("lineitem").unwrap().num_rows() as i64;
    let frac = total as f64 / lineitem_rows as f64;
    assert!(frac > 0.95 && frac <= 1.0, "Q1 should cover ~98% of lineitem, got {frac}");
    // sort order: first group is A/F
    assert_eq!(rel.value(0, "l_returnflag").unwrap(), Value::Str("A".into()));
    assert_eq!(rel.value(0, "l_linestatus").unwrap(), Value::Str("F".into()));
}

#[test]
fn q1_aggregates_are_internally_consistent() {
    let cat = catalog();
    let (rel, _) = run(&query(1), &cat).unwrap();
    for r in 0..rel.num_rows() {
        let count = rel.value(r, "count_order").unwrap().as_i64().unwrap();
        let sum_qty = rel.value(r, "sum_qty").unwrap().as_f64().unwrap();
        let avg_qty = rel.value(r, "avg_qty").unwrap().as_f64().unwrap();
        assert!(
            (sum_qty / count as f64 - avg_qty).abs() < 1e-6,
            "avg must equal sum/count in group {r}"
        );
        let disc = rel.value(r, "sum_disc_price").unwrap().as_f64().unwrap();
        let base = rel.value(r, "sum_base_price").unwrap().as_f64().unwrap();
        let charge = rel.value(r, "sum_charge").unwrap().as_f64().unwrap();
        assert!(disc < base, "discounted < base");
        assert!(charge > disc, "charge adds tax on top of discounted");
    }
}

#[test]
fn q3_returns_top_orders_sorted_by_revenue() {
    let cat = catalog();
    let (rel, _) = run(&query(3), &cat).unwrap();
    assert!(rel.num_rows() <= 10);
    let rev = rel.column("revenue").unwrap();
    let (m, _) = rev.as_decimal().unwrap();
    for w in m.windows(2) {
        assert!(w[0] >= w[1], "revenue must be descending");
    }
}

#[test]
fn q4_priorities_complete_and_sorted() {
    let cat = catalog();
    let (rel, _) = run(&query(4), &cat).unwrap();
    assert_eq!(rel.num_rows(), 5, "all five priorities have late orders");
    let first = rel.value(0, "o_orderpriority").unwrap();
    assert_eq!(first, Value::Str("1-URGENT".into()));
}

#[test]
fn q6_matches_hand_computed_scan() {
    let cat = catalog();
    let (rel, _) = run(&query(6), &cat).unwrap();
    let (m, s) = rel.column("revenue").unwrap().as_decimal().unwrap();
    // Hand-compute over the raw lineitem columns.
    let li = cat.table("lineitem").unwrap();
    let ship = li.column_by_name("l_shipdate").unwrap();
    let ship = ship.as_date().unwrap();
    let disc = li.column_by_name("l_discount").unwrap();
    let (disc, _) = disc.as_decimal().unwrap();
    let qty = li.column_by_name("l_quantity").unwrap();
    let (qty, _) = qty.as_decimal().unwrap();
    let ext = li.column_by_name("l_extendedprice").unwrap();
    let (ext, _) = ext.as_decimal().unwrap();
    let lo = wimpi_storage::Date32::from_ymd(1994, 1, 1).0;
    let hi = wimpi_storage::Date32::from_ymd(1995, 1, 1).0;
    let mut expected: i128 = 0;
    for i in 0..ship.len() {
        if ship[i] >= lo && ship[i] < hi && (5..=7).contains(&disc[i]) && qty[i] < 2400 {
            expected += ext[i] as i128 * disc[i] as i128;
        }
    }
    assert_eq!(m[0] as i128, expected, "Q6 revenue mismatch at scale {s}");
}

#[test]
fn q13_includes_customers_without_orders() {
    let cat = catalog();
    let (rel, _) = run(&query(13), &cat).unwrap();
    // The c_count = 0 bucket must exist (custkeys divisible by 3 never order).
    let counts = rel.column("c_count").unwrap();
    let counts = counts.as_i64().unwrap();
    let dist = rel.column("custdist").unwrap();
    let dist = dist.as_i64().unwrap();
    let zero_bucket = counts.iter().position(|&c| c == 0).expect("zero bucket exists");
    let customers = cat.table("customer").unwrap().num_rows() as i64;
    assert!(dist[zero_bucket] >= customers / 3, "at least a third of customers have no orders");
    // Total across buckets = number of customers.
    let total: i64 = dist.iter().sum();
    assert_eq!(total, customers);
}

#[test]
fn q14_promo_fraction_is_a_percentage() {
    let cat = catalog();
    let (rel, _) = run(&query(14), &cat).unwrap();
    let v = rel.column("promo_revenue").unwrap().as_f64().unwrap()[0];
    assert!(v > 0.0 && v < 100.0, "promo revenue {v} should be a percentage");
}

#[test]
fn q18_respects_having_threshold() {
    let cat = catalog();
    let (rel, _) = run(&query(18), &cat).unwrap();
    let qty = rel.column("total_qty").unwrap();
    let (m, s) = qty.as_decimal().unwrap();
    let threshold = 300 * 10i64.pow(s as u32);
    assert!(m.iter().all(|&q| q > threshold), "every order exceeds 300 units");
}

#[test]
fn q22_customers_have_no_orders() {
    let cat = catalog();
    let (rel, _) = run(&query(22), &cat).unwrap();
    assert!(rel.num_rows() <= 7, "at most seven country codes");
    let n = rel.column("numcust").unwrap();
    assert!(n.as_i64().unwrap().iter().all(|&c| c > 0));
}

#[test]
fn chokepoint_subset_is_stable() {
    assert_eq!(CHOKEPOINT_QUERIES, [1, 3, 4, 5, 6, 13, 14, 19]);
}
