//! The Dhrystone synthetic integer benchmark (Weicker, 1984) — record
//! assignment, string comparison, branching — reporting DMIPS.

use std::hint::black_box;
use std::time::Instant;

/// Result of one Dhrystone run.
#[derive(Debug, Clone, Copy)]
pub struct DhrystoneResult {
    /// Executed Dhrystone iterations.
    pub iterations: u64,
    /// Wall time, seconds.
    pub elapsed_s: f64,
    /// Dhrystones per second.
    pub dhrystones_per_s: f64,
    /// DMIPS (Dhrystones/s ÷ 1757, the VAX 11/780 baseline).
    pub dmips: f64,
    /// Dead-code-elimination defeating checksum.
    pub checksum: u64,
}

#[derive(Clone, Default)]
struct Record {
    int_comp: i64,
    enum_comp: u8,
    string_comp: [u8; 30],
    next: Option<Box<Record>>,
}

const STR_1: &[u8; 30] = b"DHRYSTONE PROGRAM, 1'ST STRING";
const STR_2: &[u8; 30] = b"DHRYSTONE PROGRAM, 2'ND STRING";

fn func_1(a: u8, b: u8) -> u8 {
    if a == b {
        0
    } else {
        1
    }
}

fn func_2(s1: &[u8; 30], s2: &[u8; 30]) -> bool {
    let mut int_loc = 2usize;
    while int_loc <= 2 {
        if func_1(s1[int_loc], s2[int_loc + 1]) == 0 {
            int_loc += 3;
        } else {
            break;
        }
    }
    if s1 > s2 {
        true
    } else {
        int_loc > 5
    }
}

fn proc_7(a: i64, b: i64) -> i64 {
    a + 2 + b
}

fn proc_8(arr1: &mut [i64; 50], arr2: &mut [[i64; 50]; 10], a: usize, b: i64) {
    let loc = a + 5;
    arr1[loc] = b;
    arr1[loc + 1] = arr1[loc];
    arr1[loc + 30] = loc as i64;
    for i in loc..=loc + 1 {
        arr2[(loc / 8).min(9)][i.min(49)] = loc as i64;
    }
    arr2[(loc / 8).min(9)][(loc % 40) + 1] += 1;
}

/// Runs `iterations` Dhrystone loops.
pub fn run(iterations: u64) -> DhrystoneResult {
    let mut glob =
        Record { int_comp: 40, enum_comp: 2, string_comp: *STR_1, next: Some(Box::default()) };
    let mut arr1 = [0i64; 50];
    let mut arr2 = [[0i64; 50]; 10];
    let mut int_1;
    let mut int_2;
    let mut int_3 = 0i64;
    let mut checksum = 0u64;

    let start = Instant::now();
    for run_idx in 0..iterations {
        int_1 = 2;
        int_2 = 3;
        let ch_1 = b'A';
        let bool_glob = !func_2(&glob.string_comp, STR_2);
        while int_1 < int_2 {
            int_3 = 5 * int_1 - int_2;
            int_3 = proc_7(int_1, int_3);
            int_1 += 1;
        }
        proc_8(&mut arr1, &mut arr2, (int_1 as usize + run_idx as usize % 3) % 8, int_3);
        glob.int_comp = if bool_glob { glob.int_comp + 1 } else { glob.int_comp - 1 };
        glob.enum_comp = func_1(ch_1, b'C');
        if let Some(next) = glob.next.as_mut() {
            next.int_comp = glob.int_comp;
            std::mem::swap(&mut next.string_comp, &mut glob.string_comp);
            std::mem::swap(&mut next.string_comp, &mut glob.string_comp);
        }
        checksum =
            checksum.wrapping_add(glob.int_comp as u64).wrapping_mul(31).wrapping_add(int_3 as u64);
        black_box(&arr1);
    }
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    let dps = iterations as f64 / elapsed;
    DhrystoneResult {
        iterations,
        elapsed_s: elapsed,
        dhrystones_per_s: dps,
        dmips: dps / 1757.0,
        checksum: black_box(checksum),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_checksum() {
        assert_eq!(run(10_000).checksum, run(10_000).checksum);
    }

    #[test]
    fn scores_positive() {
        let r = run(50_000);
        assert!(r.dmips > 0.0);
        assert!(r.dhrystones_per_s > r.dmips);
    }

    #[test]
    fn checksum_depends_on_iterations() {
        assert_ne!(run(1_000).checksum, run(2_000).checksum);
    }
}
