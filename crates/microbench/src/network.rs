//! Network transfer model — the WIMPI interconnect.
//!
//! The paper measured ≈ 220 Mbps between two WIMPI nodes with iperf (§II-C3):
//! the Pi 3B+'s gigabit port shares a USB 2.0 bus, capping effective
//! bandwidth at ≈ 20% of line rate. This model is the substitution for that
//! physical measurement (DESIGN.md §2) and is what the cluster driver
//! charges for shipping partial results.

/// A point-to-point link model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetModel {
    /// Effective bandwidth, megabits per second.
    pub bandwidth_mbps: f64,
    /// One-way latency, milliseconds.
    pub latency_ms: f64,
}

impl NetModel {
    /// The WIMPI node link: 220 Mbps effective, sub-millisecond switch RTT.
    pub fn wimpi_node() -> Self {
        Self { bandwidth_mbps: 220.0, latency_ms: 0.3 }
    }

    /// An unconstrained gigabit link (the switch backplane).
    pub fn gigabit() -> Self {
        Self { bandwidth_mbps: 1_000.0, latency_ms: 0.1 }
    }

    /// Seconds to transfer `bytes` over the link (latency + serialization).
    pub fn transfer_s(&self, bytes: u64) -> f64 {
        self.latency_ms / 1e3 + bytes as f64 * 8.0 / (self.bandwidth_mbps * 1e6)
    }

    /// An iperf-style throughput report for an `n`-second measurement
    /// window: bytes the link can move, and the Mbps it would print.
    pub fn iperf(&self, seconds: f64) -> (u64, f64) {
        let bytes = (self.bandwidth_mbps * 1e6 / 8.0 * seconds) as u64;
        (bytes, self.bandwidth_mbps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wimpi_link_matches_paper_iperf() {
        let (_, mbps) = NetModel::wimpi_node().iperf(10.0);
        assert!((mbps - 220.0).abs() < 1.0, "paper measured ≈220 Mbps");
    }

    #[test]
    fn node_link_is_a_fifth_of_line_rate() {
        let ratio = NetModel::wimpi_node().bandwidth_mbps / NetModel::gigabit().bandwidth_mbps;
        assert!((0.15..=0.25).contains(&ratio), "USB-bus cap ≈ 20%");
    }

    #[test]
    fn transfer_time_scales_with_bytes() {
        let net = NetModel::wimpi_node();
        let one_mb = net.transfer_s(1 << 20);
        let ten_mb = net.transfer_s(10 << 20);
        assert!(ten_mb > one_mb * 9.0);
        // 1 MiB at 220 Mbps ≈ 38 ms
        assert!((one_mb - 0.0384).abs() < 0.005, "got {one_mb}");
    }

    #[test]
    fn latency_floors_small_messages() {
        let net = NetModel::wimpi_node();
        assert!(net.transfer_s(1) >= 0.0003);
    }
}
