//! The Whetstone synthetic floating-point benchmark (Curnow & Wichmann,
//! 1976), reimplemented from the classic C translation. Scores are MWIPS —
//! millions of Whetstone instructions per second.
//!
//! The kernel is the real workload the paper's Figure 2a runs; the hwsim
//! crate *predicts* per-profile MWIPS, while this module *measures* them on
//! the host as the model's sanity anchor.

use std::hint::black_box;
use std::time::Instant;

/// Result of one Whetstone run.
#[derive(Debug, Clone, Copy)]
pub struct WhetstoneResult {
    /// Completed loop count (each loop ≈ one million Whetstone instructions).
    pub loops: u32,
    /// Wall time, seconds.
    pub elapsed_s: f64,
    /// Millions of Whetstone instructions per second.
    pub mwips: f64,
    /// Checksum defeating dead-code elimination; also validated by tests.
    pub checksum: f64,
}

const T: f64 = 0.499_975;
const T2: f64 = 2.0;

struct State {
    e1: [f64; 4],
    x: f64,
    y: f64,
    z: f64,
}

/// Module 3: array-as-parameter arithmetic.
fn pa(e: &mut [f64; 4]) {
    for _ in 0..6 {
        e[0] = (e[0] + e[1] + e[2] - e[3]) * T;
        e[1] = (e[0] + e[1] - e[2] + e[3]) * T;
        e[2] = (e[0] - e[1] + e[2] + e[3]) * T;
        e[3] = (-e[0] + e[1] + e[2] + e[3]) / T2;
    }
}

/// Modules 6/11 helper: integer-ish arithmetic through floats.
fn p3(x: f64, y: f64, z: &mut f64) {
    let x1 = T * (*z + x);
    let y1 = T * (x1 + y);
    *z = (x1 + y1) / T2;
}

fn p0(e1: &mut [f64; 4], j: usize, k: usize, l: usize) {
    e1[j] = e1[k];
    e1[k] = e1[l];
    e1[l] = e1[j];
}

/// Runs `loops` Whetstone loops and reports MWIPS.
pub fn run(loops: u32) -> WhetstoneResult {
    let start = Instant::now();
    let mut s = State { e1: [1.0, -1.0, -1.0, -1.0], x: 0.0, y: 0.0, z: 0.0 };
    // Classic loop weights for the 100 kWhet inner iteration.
    let n6 = 210 * loops;
    let n8 = 899 * loops;
    let n9 = 616 * loops;
    let n10 = 0;
    let n11 = 93 * loops;
    for _ in 0..loops {
        // Module 1: simple identifiers
        s.x = 1.0;
        s.y = -1.0;
        s.z = -1.0;
        let mut x1 = 1.0f64;
        for _ in 0..(12 * loops).min(12_000) {
            x1 = (x1 + s.y + s.z - s.x) * T;
            s.y = (x1 + s.y - s.z + s.x) * T;
            s.z = (x1 - s.y + s.z + s.x) * T;
            s.x = (-x1 + s.y + s.z + s.x) * T;
        }
        // Module 2/3: array elements & parameters
        s.e1 = [1.0, -1.0, -1.0, -1.0];
        for _ in 0..140 {
            pa(&mut s.e1);
        }
        // Module 7: trig
        s.x = 0.5;
        s.y = 0.5;
        for i in 1..=(32 * loops).min(3_200) {
            let i = i as f64;
            s.x = T * ((s.x + s.y).sin().atan2((s.x * s.y).cos()) * T2 / (i + 1.0)).abs();
            s.y = T * ((s.x - s.y).cos().atan2((s.x * s.y).sin()) * T2 / (i + 1.0)).abs();
        }
        // Module 8: procedure calls
        s.x = 1.0;
        s.y = 1.0;
        s.z = 1.0;
        for _ in 0..n8 {
            p3(s.x, s.y, &mut s.z);
        }
        // Module 6: integer arithmetic through indices
        let (mut j, mut k, mut l) = (1usize, 2usize, 3usize);
        for _ in 0..n6 {
            j = (j * (k - j) * (l - k)) % 4;
            k = (l * k - (l - j) * k) % 4;
            l = ((l - k) * (k + j)).max(1) % 4;
            s.e1[l.min(3)] = (j + k + l) as f64;
            s.e1[k.min(3)] = j as f64 * (k as f64) * (l as f64);
        }
        // Module 9: permutation procedure
        for _ in 0..n9 {
            p0(&mut s.e1, 0, 1, 2);
        }
        // Module 11: standard functions
        s.x = 0.75;
        for _ in 0..n11 {
            s.x = (s.x.ln() / s.x.exp().ln().max(1e-9)).sqrt().max(0.1);
        }
        let _ = n10;
        black_box(&s.e1);
    }
    let elapsed = start.elapsed().as_secs_f64();
    let checksum = s.x + s.y + s.z + s.e1.iter().sum::<f64>();
    WhetstoneResult {
        loops,
        elapsed_s: elapsed,
        mwips: loops as f64 / elapsed.max(1e-9),
        checksum: black_box(checksum),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_finite_checksum() {
        let r = run(2);
        assert!(r.checksum.is_finite(), "checksum {}", r.checksum);
        assert!(r.mwips > 0.0);
        assert_eq!(r.loops, 2);
    }

    #[test]
    fn deterministic_checksum_across_runs() {
        let a = run(2).checksum;
        let b = run(2).checksum;
        assert_eq!(a, b, "kernel must be deterministic");
    }

    #[test]
    fn more_loops_take_longer() {
        let small = run(1);
        let big = run(8);
        assert!(big.elapsed_s > small.elapsed_s);
    }
}
