//! The sysbench `memory` workload: sequential read bandwidth over a large
//! buffer (Figure 2d's kernel).

use std::hint::black_box;
use std::time::Instant;

/// Result of one bandwidth probe.
#[derive(Debug, Clone, Copy)]
pub struct MembwResult {
    /// Buffer size in bytes.
    pub buffer_bytes: usize,
    /// Passes over the buffer.
    pub passes: u32,
    /// Wall time, seconds.
    pub elapsed_s: f64,
    /// Measured sequential read bandwidth, GB/s.
    pub read_gbs: f64,
    /// Anti-DCE checksum.
    pub checksum: u64,
}

/// Streams `passes` sequential-read passes over a `buffer_bytes` buffer.
///
/// The buffer is initialized with a cheap LCG so the pages are resident and
/// non-zero; reads are 8-byte strided sums, the same access pattern the
/// engine's column scans produce.
pub fn read_bandwidth(buffer_bytes: usize, passes: u32) -> MembwResult {
    let words = (buffer_bytes / 8).max(1);
    let mut buf: Vec<u64> = Vec::with_capacity(words);
    let mut state = 0x2545F491_4F6CDD1Du64;
    for _ in 0..words {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        buf.push(state);
    }
    let mut checksum = 0u64;
    let start = Instant::now();
    for _ in 0..passes {
        let mut acc = 0u64;
        for &w in &buf {
            acc = acc.wrapping_add(w);
        }
        checksum = checksum.wrapping_add(black_box(acc));
    }
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    let bytes = words as f64 * 8.0 * passes as f64;
    MembwResult {
        buffer_bytes: words * 8,
        passes,
        elapsed_s: elapsed,
        read_gbs: bytes / elapsed / 1e9,
        checksum,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_is_positive_and_checksum_stable() {
        let a = read_bandwidth(1 << 20, 4);
        let b = read_bandwidth(1 << 20, 4);
        assert!(a.read_gbs > 0.0);
        assert_eq!(a.checksum, b.checksum, "same buffer contents, same checksum");
        assert_eq!(a.buffer_bytes, 1 << 20);
    }

    #[test]
    fn more_passes_scale_time_roughly_linearly() {
        let one = read_bandwidth(4 << 20, 2);
        let four = read_bandwidth(4 << 20, 8);
        assert!(four.elapsed_s > one.elapsed_s * 1.5);
    }
}
