//! The sysbench `cpu` workload: trial-division primality testing of every
//! integer up to a bound (Figure 2c's kernel; lower runtime is better).

use std::hint::black_box;
use std::time::Instant;

/// Result of one prime-test run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrimeResult {
    /// Upper bound tested (sysbench's `--cpu-max-prime`).
    pub max: u64,
    /// Number of primes found (validates the kernel did real work).
    pub primes_found: u64,
    /// Wall time, seconds.
    pub elapsed_s: f64,
}

/// sysbench's trial-division loop, verbatim semantics: for each candidate
/// `c` in `3..=max`, divide by every `t` in `2..` while `t*t <= c`.
pub fn run(max: u64) -> PrimeResult {
    let start = Instant::now();
    let mut found = 1u64; // 2 is prime
    for c in (3..=max).step_by(2) {
        let mut t = 2u64;
        let mut is_prime = true;
        while t * t <= c {
            if c % t == 0 {
                is_prime = false;
                break;
            }
            t += 1;
        }
        if is_prime {
            found += 1;
        }
    }
    PrimeResult { max, primes_found: black_box(found), elapsed_s: start.elapsed().as_secs_f64() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prime_counts_are_correct() {
        // π(10) = 4, π(100) = 25, π(10000) = 1229.
        assert_eq!(run(10).primes_found, 4);
        assert_eq!(run(100).primes_found, 25);
        assert_eq!(run(10_000).primes_found, 1229);
    }

    #[test]
    fn deterministic() {
        assert_eq!(run(5_000).primes_found, run(5_000).primes_found);
    }

    #[test]
    fn larger_bound_takes_longer() {
        let small = run(20_000);
        let big = run(200_000);
        assert!(big.elapsed_s > small.elapsed_s);
        assert!(big.primes_found > small.primes_found);
    }
}
