//! # wimpi-microbench
//!
//! Runnable implementations of the microbenchmarks in the paper's §II-C:
//! Whetstone (Figure 2a), Dhrystone (Figure 2b), the sysbench prime test
//! (Figure 2c), a sequential memory-bandwidth probe (Figure 2d), and the
//! WIMPI network-link model (§II-C3's iperf measurement).
//!
//! These kernels run for real on the host and define the work units
//! `wimpi-hwsim` prices per hardware profile; host scores act as the sanity
//! anchor recorded in EXPERIMENTS.md.

pub mod dhrystone;
pub mod membw;
pub mod network;
pub mod primes;
pub mod whetstone;

pub use network::NetModel;
