//! Energy proportionality (paper §III-B2).
//!
//! Traditional servers draw a large fraction of their peak power while
//! idle; the Pi draws almost nothing and can be powered off per node. This
//! module models energy over a duty cycle (busy fraction of wall time) and
//! the fine-grained right-sizing the paper highlights: turning individual
//! WIMPI nodes off when utilization drops.

/// Power characteristics of one machine or node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerModel {
    /// Draw under load, watts.
    pub active_w: f64,
    /// Draw while idle but powered on, watts.
    pub idle_w: f64,
}

impl PowerModel {
    /// A traditional server CPU: idle draw is a large fraction of TDP
    /// (memory refresh, fans, voltage regulators — Barroso & Hölzle's
    /// energy-proportionality critique the paper cites).
    pub fn server(tdp_w: f64) -> Self {
        Self { active_w: tdp_w, idle_w: tdp_w * 0.55 }
    }

    /// A Raspberry Pi 3B+ node: 5.1 W peak, ~1.9 W idle — nearly
    /// energy-proportional, and a node can simply be switched off (0 W).
    pub fn pi_node() -> Self {
        Self { active_w: 5.1, idle_w: 1.9 }
    }

    /// Energy proportionality index in [0, 1]: 1 means idle costs nothing.
    pub fn proportionality(&self) -> f64 {
        1.0 - self.idle_w / self.active_w
    }

    /// Energy in joules over `wall_s` seconds with the machine busy for
    /// `busy_frac` of them.
    pub fn energy_j(&self, wall_s: f64, busy_frac: f64) -> f64 {
        assert!((0.0..=1.0).contains(&busy_frac), "busy fraction in [0, 1]");
        wall_s * (busy_frac * self.active_w + (1.0 - busy_frac) * self.idle_w)
    }
}

/// Energy of an n-node WIMPI cluster over a duty cycle when idle nodes can
/// be powered off entirely (the paper's fine-grained right-sizing):
/// `active_nodes` run the workload, the rest draw zero.
pub fn wimpi_rightsized_energy_j(
    total_nodes: u32,
    active_nodes: u32,
    wall_s: f64,
    busy_frac: f64,
) -> f64 {
    assert!(active_nodes <= total_nodes);
    let node = PowerModel::pi_node();
    active_nodes as f64 * node.energy_j(wall_s, busy_frac)
}

/// Ratio of server energy to right-sized WIMPI energy over the same duty
/// cycle — the §III-B2 argument quantified. Values > 1 favour WIMPI.
pub fn idle_advantage(server_tdp_w: f64, nodes: u32, active_nodes: u32, busy_frac: f64) -> f64 {
    let server = PowerModel::server(server_tdp_w).energy_j(3600.0, busy_frac);
    let wimpi = wimpi_rightsized_energy_j(nodes, active_nodes, 3600.0, busy_frac);
    server / wimpi
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pi_is_more_proportional_than_server() {
        let pi = PowerModel::pi_node();
        let server = PowerModel::server(95.0);
        assert!(pi.proportionality() > server.proportionality());
        assert!(pi.proportionality() > 0.6);
        assert!(server.proportionality() < 0.5);
    }

    #[test]
    fn energy_interpolates_between_idle_and_active() {
        let m = PowerModel { active_w: 100.0, idle_w: 40.0 };
        assert_eq!(m.energy_j(10.0, 1.0), 1000.0);
        assert_eq!(m.energy_j(10.0, 0.0), 400.0);
        assert_eq!(m.energy_j(10.0, 0.5), 700.0);
    }

    #[test]
    fn idle_clusters_widen_the_gap() {
        // The idler the cluster, the more the server's poor proportionality
        // hurts — §III-B2's point.
        let busy = idle_advantage(95.0, 24, 24, 1.0);
        let idle = idle_advantage(95.0, 24, 24, 0.05);
        assert!(idle > busy, "advantage grows when mostly idle: {idle} vs {busy}");
    }

    #[test]
    fn powering_off_nodes_saves_linearly() {
        let full = wimpi_rightsized_energy_j(24, 24, 3600.0, 0.5);
        let half = wimpi_rightsized_energy_j(24, 12, 3600.0, 0.5);
        assert!((full / half - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "busy fraction")]
    fn busy_fraction_validated() {
        PowerModel::pi_node().energy_j(1.0, 1.5);
    }
}
