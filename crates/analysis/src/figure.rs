//! Text rendering for tables and figures.
//!
//! The bench harness regenerates every table and figure of the paper as
//! aligned text (plus machine-readable JSON next to it); this module holds
//! the shared renderer.

/// A named series over shared row labels — one line of a figure, or one
/// column of a table.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// One value per row label (`None` renders as `-`).
    pub values: Vec<Option<f64>>,
}

impl Series {
    /// Builds a fully populated series.
    pub fn new(name: impl Into<String>, values: Vec<f64>) -> Self {
        Self { name: name.into(), values: values.into_iter().map(Some).collect() }
    }
}

/// A renderable table/figure.
#[derive(Debug, Clone)]
pub struct TextFigure {
    /// Figure/table title.
    pub title: String,
    /// Label of the row-key column.
    pub row_header: String,
    /// Row labels.
    pub rows: Vec<String>,
    /// Data series (columns).
    pub series: Vec<Series>,
    /// Number formatting precision.
    pub precision: usize,
}

impl TextFigure {
    /// Creates an empty figure.
    pub fn new(title: impl Into<String>, row_header: impl Into<String>) -> Self {
        Self {
            title: title.into(),
            row_header: row_header.into(),
            rows: Vec::new(),
            series: Vec::new(),
            precision: 3,
        }
    }

    /// Appends a series; its length must match the row labels.
    pub fn push_series(&mut self, s: Series) {
        assert_eq!(
            s.values.len(),
            self.rows.len(),
            "series {} has {} values for {} rows",
            s.name,
            s.values.len(),
            self.rows.len()
        );
        self.series.push(s);
    }

    /// Renders the aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt = |v: &Option<f64>| match v {
            Some(x) if x.abs() >= 1000.0 => format!("{x:.0}"),
            Some(x) => format!("{x:.prec$}", prec = self.precision),
            None => "-".to_string(),
        };
        let mut widths: Vec<usize> = Vec::new();
        widths.push(
            self.rows.iter().map(String::len).chain([self.row_header.len()]).max().unwrap_or(0),
        );
        for s in &self.series {
            let w = s.values.iter().map(|v| fmt(v).len()).chain([s.name.len()]).max().unwrap_or(1);
            widths.push(w);
        }
        out.push_str(&format!("{:<w$}", self.row_header, w = widths[0]));
        for (i, s) in self.series.iter().enumerate() {
            out.push_str(&format!("  {:>w$}", s.name, w = widths[i + 1]));
        }
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * self.series.len()));
        out.push('\n');
        for (r, label) in self.rows.iter().enumerate() {
            out.push_str(&format!("{label:<w$}", w = widths[0]));
            for (i, s) in self.series.iter().enumerate() {
                out.push_str(&format!("  {:>w$}", fmt(&s.values[r]), w = widths[i + 1]));
            }
            out.push('\n');
        }
        out
    }

    /// Serializes the figure as a JSON object (hand-rolled — the figure
    /// values are plain numbers and labels, no serde needed here).
    pub fn to_json(&self) -> String {
        let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
        let mut out = format!(
            "{{\"title\":\"{}\",\"rows\":[{}],\"series\":[",
            esc(&self.title),
            self.rows.iter().map(|r| format!("\"{}\"", esc(r))).collect::<Vec<_>>().join(",")
        );
        for (i, s) in self.series.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let vals: Vec<String> = s
                .values
                .iter()
                .map(|v| match v {
                    Some(x) if x.is_finite() => format!("{x}"),
                    _ => "null".to_string(),
                })
                .collect();
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"values\":[{}]}}",
                esc(&s.name),
                vals.join(",")
            ));
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fig() -> TextFigure {
        let mut f = TextFigure::new("Demo", "query");
        f.rows = vec!["Q1".into(), "Q6".into()];
        f.push_series(Series::new("op-e5", vec![0.161, 0.028]));
        f.push_series(Series { name: "pi3b+".into(), values: vec![Some(1.772), None] });
        f
    }

    #[test]
    fn render_aligns_and_includes_all_cells() {
        let text = fig().render();
        assert!(text.contains("== Demo =="));
        assert!(text.contains("0.161"));
        assert!(text.contains("1.772"));
        assert!(text.lines().last().unwrap().trim_end().ends_with('-'));
        assert!(text.contains("Q6"));
    }

    #[test]
    fn json_is_well_formed_enough() {
        let j = fig().to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"rows\":[\"Q1\",\"Q6\"]"));
        assert!(j.contains("null"), "missing values serialize as null");
    }

    #[test]
    #[should_panic(expected = "values for")]
    fn mismatched_series_length_panics() {
        let mut f = TextFigure::new("x", "r");
        f.rows = vec!["a".into()];
        f.push_series(Series::new("s", vec![1.0, 2.0]));
    }
}
