//! # wimpi-analysis
//!
//! The paper's §III methodology as a library: runtime normalization by MSRP
//! (Figure 5), hourly cost (Figure 6), and TDP energy (Figure 7), speedups
//! (Figure 3), break-even detection, and the text/JSON figure renderer the
//! bench harness uses.

pub mod figure;
pub mod normalize;
pub mod proportionality;

pub use figure::{Series, TextFigure};
pub use normalize::{
    break_even_nodes, energy_j, improvement, msrp, speedup, wimpi_hourly, wimpi_msrp, wimpi_power_w,
};
