//! The paper's normalization arithmetic (§III).
//!
//! Runtimes are multiplied by the metric under consideration — MSRP dollars,
//! hourly dollars, or TDP watts — and the *improvement factor* of a
//! Pi/WIMPI configuration over a traditional server is
//! `(server_time × server_metric) / (pi_time × pi_metric)`. Values above the
//! 1× break-even line favour the SBC.

use wimpi_hwsim::profiles::wimpi;
use wimpi_hwsim::HwProfile;

/// Improvement factor of configuration A over reference R:
/// `(t_R · m_R) / (t_A · m_A)`; > 1 means A wins.
pub fn improvement(t_a: f64, m_a: f64, t_r: f64, m_r: f64) -> f64 {
    (t_r * m_r) / (t_a * m_a)
}

/// A comparison point's MSRP as the paper counts it: per-socket MSRP times
/// socket count (§III-A1 doubles the dual-socket on-premises boxes).
pub fn msrp(hw: &HwProfile) -> Option<f64> {
    hw.msrp_usd.map(|m| m * hw.sockets as f64)
}

/// MSRP of an n-node WIMPI cluster, nodes plus peripherals (§II-B).
pub fn wimpi_msrp(nodes: u32) -> f64 {
    nodes as f64 * (35.0 + wimpi::PERIPHERALS_USD)
}

/// Hourly operating cost of an n-node WIMPI cluster (the $0.0004/node rate
/// computed from peak draw × US average $/kWh).
pub fn wimpi_hourly(nodes: u32) -> f64 {
    nodes as f64 * 0.0004
}

/// Peak power draw of an n-node WIMPI cluster in watts (5.1 W per node; the
/// paper's ~122 W for 24 nodes).
pub fn wimpi_power_w(nodes: u32) -> f64 {
    nodes as f64 * 5.1
}

/// Energy in joules for a run: watts × seconds (the paper's TDP methodology).
pub fn energy_j(power_w: f64, runtime_s: f64) -> f64 {
    power_w * runtime_s
}

/// Speedup of `reference` over `other` (> 1 when reference is faster) — the
/// quantity Figure 3 plots with the Pi/WIMPI as `other`.
pub fn speedup(reference_s: f64, other_s: f64) -> f64 {
    other_s / reference_s
}

/// First cluster size (in `sizes` order) whose improvement over the
/// reference crosses 1×; `None` when the server always wins (the paper's
/// Q13).
pub fn break_even_nodes(sizes: &[u32], improvements: &[f64]) -> Option<u32> {
    sizes.iter().zip(improvements).find(|(_, &imp)| imp >= 1.0).map(|(&n, _)| n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wimpi_hwsim::profile;

    #[test]
    fn improvement_matches_paper_example() {
        // Paper §III: "5× could mean the Pi is 5× faster at the same cost,
        // or takes twice as long but costs 10× less."
        let same_cost = improvement(1.0, 10.0, 5.0, 10.0);
        assert!((same_cost - 5.0).abs() < 1e-12);
        let slower_cheaper = improvement(2.0, 1.0, 1.0, 10.0);
        assert!((slower_cheaper - 5.0).abs() < 1e-12);
    }

    #[test]
    fn msrp_doubles_dual_socket() {
        let e5 = profile("op-e5").unwrap();
        assert_eq!(msrp(&e5), Some(2778.0));
        let pi = profile("pi3b+").unwrap();
        assert_eq!(msrp(&pi), Some(35.0));
        let cloud = profile("m5.metal").unwrap();
        assert_eq!(msrp(&cloud), None, "custom SKUs have no MSRP");
    }

    #[test]
    fn wimpi_cluster_costs() {
        // 24 nodes ≈ $840 bare (paper) + peripherals.
        assert_eq!(24.0 * 35.0, 840.0);
        assert!((wimpi_msrp(24) - (840.0 + 24.0 * 12.5)).abs() < 1e-9);
        assert!((wimpi_power_w(24) - 122.4).abs() < 0.1, "paper: ≈122 W total");
        assert!((wimpi_hourly(1) - 0.0004).abs() < 1e-12);
    }

    #[test]
    fn break_even_detection() {
        let sizes = [4, 8, 12, 16];
        assert_eq!(break_even_nodes(&sizes, &[0.2, 0.9, 1.3, 1.2]), Some(12));
        assert_eq!(break_even_nodes(&sizes, &[0.2, 0.3, 0.4, 0.5]), None);
        assert_eq!(break_even_nodes(&sizes, &[1.5, 1.3, 1.2, 1.1]), Some(4));
    }

    #[test]
    fn energy_is_watt_seconds() {
        assert_eq!(energy_j(95.0, 2.0), 190.0);
    }

    #[test]
    fn speedup_orientation() {
        // Server at 0.1 s vs Pi at 1.0 s → Pi is 10× slower → speedup 10.
        assert!((speedup(0.1, 1.0) - 10.0).abs() < 1e-12);
    }
}
