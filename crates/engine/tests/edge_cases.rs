//! Engine edge cases: empty inputs, degenerate joins, deep plans, limits.

use std::sync::Arc;
use wimpi_engine::expr::{col, lit};
use wimpi_engine::plan::{AggExpr, JoinType, PlanBuilder, SortKey};
use wimpi_engine::{execute_query, Relation};
use wimpi_storage::{Catalog, Column, DataType, Field, Schema, Table};

fn catalog() -> Catalog {
    let mut cat = Catalog::new();
    cat.register(
        "t",
        Table::new(
            Schema::new(vec![Field::new("k", DataType::Int64), Field::new("v", DataType::Int64)]),
            vec![Column::Int64(vec![1, 2, 3, 4, 5]), Column::Int64(vec![10, 20, 30, 40, 50])],
        )
        .expect("table builds"),
    );
    cat.register(
        "empty",
        Table::new(
            Schema::new(vec![Field::new("ek", DataType::Int64), Field::new("ev", DataType::Int64)]),
            vec![Column::Int64(vec![]), Column::Int64(vec![])],
        )
        .expect("table builds"),
    );
    cat
}

#[test]
fn joins_with_empty_sides() {
    let cat = catalog();
    // Empty build side: inner join yields nothing; anti join keeps all.
    let inner =
        PlanBuilder::scan("t").inner_join(PlanBuilder::scan("empty"), vec![("k", "ek")]).build();
    let (r, _) = execute_query(&inner, &cat).expect("runs");
    assert_eq!(r.num_rows(), 0);

    let anti = PlanBuilder::scan("t")
        .join(PlanBuilder::scan("empty"), vec![("k", "ek")], JoinType::Anti)
        .build();
    let (r, _) = execute_query(&anti, &cat).expect("runs");
    assert_eq!(r.num_rows(), 5);

    // Empty probe side.
    let probe_empty =
        PlanBuilder::scan("empty").inner_join(PlanBuilder::scan("t"), vec![("ek", "k")]).build();
    let (r, _) = execute_query(&probe_empty, &cat).expect("runs");
    assert_eq!(r.num_rows(), 0);
    assert_eq!(r.num_columns(), 4);
}

#[test]
fn aggregate_over_empty_filter_result() {
    let cat = catalog();
    let plan = PlanBuilder::scan("t")
        .filter(col("k").gt(lit(1000i64)))
        .aggregate(vec![], vec![AggExpr::count_star("n"), AggExpr::sum(col("v"), "s")])
        .build();
    let (r, _) = execute_query(&plan, &cat).expect("runs");
    assert_eq!(r.num_rows(), 1);
    assert_eq!(r.column("n").expect("col").as_i64().expect("i64"), &[0]);
    assert_eq!(r.column("s").expect("col").as_i64().expect("i64"), &[0]);
}

#[test]
fn grouped_aggregate_over_empty_input_has_no_rows() {
    let cat = catalog();
    let plan = PlanBuilder::scan("empty")
        .aggregate(vec![(col("ek"), "g")], vec![AggExpr::count_star("n")])
        .build();
    let (r, _) = execute_query(&plan, &cat).expect("runs");
    assert_eq!(r.num_rows(), 0);
}

#[test]
fn limit_beyond_input_and_zero() {
    let cat = catalog();
    let over = PlanBuilder::scan("t").limit(100).build();
    let (r, _) = execute_query(&over, &cat).expect("runs");
    assert_eq!(r.num_rows(), 5);
    let zero = PlanBuilder::scan("t").limit(0).build();
    let (r, _) = execute_query(&zero, &cat).expect("runs");
    assert_eq!(r.num_rows(), 0);
}

#[test]
fn noop_limit_passes_input_through_without_copying() {
    // A limit keeping every row used to gather a full copy of every
    // column; it must share the input's column handles instead.
    let cat = catalog();
    let (r, _) = execute_query(&PlanBuilder::scan("t").limit(100).build(), &cat).expect("runs");
    assert_eq!(r.num_rows(), 5);
    let table = cat.table("t").expect("registered");
    for (i, (_, c)) in r.fields().iter().enumerate() {
        assert!(Arc::ptr_eq(c, table.column(i)), "no-op limit must share column {i}, not copy it");
    }
    // A genuinely cutting limit still materializes fresh columns.
    let (r, _) = execute_query(&PlanBuilder::scan("t").limit(4).build(), &cat).expect("runs");
    assert_eq!(r.num_rows(), 4);
    for (i, (_, c)) in r.fields().iter().enumerate() {
        assert!(!Arc::ptr_eq(c, table.column(i)), "cutting limit must copy column {i}");
    }
}

#[test]
fn sort_then_limit_is_top_n() {
    let cat = catalog();
    let plan = PlanBuilder::scan("t").sort(vec![SortKey::desc("v")]).limit(2).build();
    let (r, _) = execute_query(&plan, &cat).expect("runs");
    assert_eq!(r.column("v").expect("col").as_i64().expect("i64"), &[50, 40]);
}

#[test]
fn deeply_nested_plan_executes() {
    let cat = catalog();
    let mut b = PlanBuilder::scan("t");
    // 32 stacked filters, none eliminating anything.
    for _ in 0..32 {
        b = b.filter(col("k").gte(lit(0i64)));
    }
    let plan = b.aggregate(vec![], vec![AggExpr::count_star("n")]).build();
    let (r, prof) = execute_query(&plan, &cat).expect("runs");
    assert_eq!(r.column("n").expect("col").as_i64().expect("i64"), &[5]);
    assert!(prof.cpu_ops > 0);
}

#[test]
fn self_join_via_projection_rename() {
    let cat = catalog();
    let right = PlanBuilder::scan("t").project(vec![(col("k"), "rk"), (col("v"), "rv")]);
    let plan = PlanBuilder::scan("t")
        .inner_join(right, vec![("k", "rk")])
        .filter(col("v").eq(col("rv")))
        .aggregate(vec![], vec![AggExpr::count_star("n")])
        .build();
    let (r, _) = execute_query(&plan, &cat).expect("runs");
    assert_eq!(r.column("n").expect("col").as_i64().expect("i64"), &[5]);
}

#[test]
fn duplicate_output_names_rejected() {
    let bad = Relation::new(vec![
        ("x".to_string(), Arc::new(Column::Int64(vec![1]))),
        ("x".to_string(), Arc::new(Column::Int64(vec![2]))),
    ]);
    assert!(bad.is_err());
}

#[test]
fn project_constant_only_columns() {
    let cat = catalog();
    let plan = PlanBuilder::scan("t")
        .project(vec![(lit(7i64), "seven"), (col("k"), "k")])
        .aggregate(vec![], vec![AggExpr::sum(col("seven"), "s")])
        .build();
    let (r, _) = execute_query(&plan, &cat).expect("runs");
    assert_eq!(r.column("s").expect("col").as_i64().expect("i64"), &[35]);
}

#[test]
fn left_outer_join_of_empty_right() {
    let cat = catalog();
    let plan = PlanBuilder::scan("t")
        .join(PlanBuilder::scan("empty"), vec![("k", "ek")], JoinType::LeftOuter)
        .aggregate(vec![], vec![AggExpr::count_if(col("__matched"), "m"), AggExpr::count_star("n")])
        .build();
    let (r, _) = execute_query(&plan, &cat).expect("runs");
    assert_eq!(r.column("m").expect("col").as_i64().expect("i64"), &[0]);
    assert_eq!(r.column("n").expect("col").as_i64().expect("i64"), &[5]);
}
