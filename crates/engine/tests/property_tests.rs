//! Property-based tests over the engine's core data structures and
//! operators: selection-vector algebra, decimal arithmetic through the
//! evaluator, join/aggregate identities on arbitrary data.

use proptest::prelude::*;
use std::sync::Arc;
use wimpi_engine::expr::{col, lit};
use wimpi_engine::plan::{AggExpr, JoinType, PlanBuilder, SortKey};
use wimpi_engine::{execute_query, Relation};
use wimpi_storage::{selection, Catalog, Column, DataType, Field, Schema, Table, Value};

fn table_from(keys: Vec<i64>, vals: Vec<i64>) -> Table {
    Table::new(
        Schema::new(vec![Field::new("k", DataType::Int64), Field::new("v", DataType::Int64)]),
        vec![Column::Int64(keys), Column::Int64(vals)],
    )
    .expect("table builds")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Selection algebra: De Morgan over arbitrary masks.
    #[test]
    fn selection_de_morgan(mask_a in prop::collection::vec(any::<bool>(), 0..200),
                           mask_b in prop::collection::vec(any::<bool>(), 0..200)) {
        let n = mask_a.len().min(mask_b.len());
        let a = selection::from_mask(&mask_a[..n]);
        let b = selection::from_mask(&mask_b[..n]);
        // ¬(A ∪ B) == ¬A ∩ ¬B
        let lhs = selection::complement(&selection::union(&a, &b), n);
        let rhs = selection::intersect(
            &selection::complement(&a, n),
            &selection::complement(&b, n),
        );
        prop_assert_eq!(lhs, rhs);
    }

    /// Filter + count == direct count of matching elements.
    #[test]
    fn filter_count_matches_oracle(vals in prop::collection::vec(-50i64..50, 1..300),
                                   threshold in -50i64..50) {
        let n = vals.len();
        let mut cat = Catalog::new();
        cat.register("t", table_from((0..n as i64).collect(), vals.clone()));
        let plan = PlanBuilder::scan("t")
            .filter(col("v").gt(lit(threshold)))
            .aggregate(vec![], vec![AggExpr::count_star("n")])
            .build();
        let (r, _) = execute_query(&plan, &cat).expect("runs");
        let expected = vals.iter().filter(|&&v| v > threshold).count() as i64;
        prop_assert_eq!(r.column("n").expect("col").as_i64().expect("i64")[0], expected);
    }

    /// Grouped sums partition the global sum, whatever the grouping.
    #[test]
    fn group_sums_partition_total(rows in prop::collection::vec((0i64..5, -100i64..100), 1..300)) {
        let (keys, vals): (Vec<i64>, Vec<i64>) = rows.into_iter().unzip();
        let total: i64 = vals.iter().sum();
        let mut cat = Catalog::new();
        cat.register("t", table_from(keys, vals));
        let plan = PlanBuilder::scan("t")
            .aggregate(vec![(col("k"), "k")], vec![AggExpr::sum(col("v"), "s")])
            .build();
        let (r, _) = execute_query(&plan, &cat).expect("runs");
        let grouped: i64 = r.column("s").expect("col").as_i64().expect("i64").iter().sum();
        prop_assert_eq!(grouped, total);
    }

    /// Semi + anti join partition the probe side for any key sets.
    #[test]
    fn semi_anti_partition(left in prop::collection::vec(0i64..20, 0..200),
                           right in prop::collection::vec(0i64..20, 0..200)) {
        let mut cat = Catalog::new();
        let ln = left.len();
        cat.register("l", table_from(left, vec![0; ln]));
        let rn = right.len();
        cat.register(
            "r",
            Table::new(
                Schema::new(vec![Field::new("rk", DataType::Int64)]),
                vec![Column::Int64(right)],
            ).expect("table builds"),
        );
        let _ = rn;
        let semi = PlanBuilder::scan("l")
            .join(PlanBuilder::scan("r"), vec![("k", "rk")], JoinType::Semi)
            .build();
        let anti = PlanBuilder::scan("l")
            .join(PlanBuilder::scan("r"), vec![("k", "rk")], JoinType::Anti)
            .build();
        let (s, _) = execute_query(&semi, &cat).expect("runs");
        let (a, _) = execute_query(&anti, &cat).expect("runs");
        prop_assert_eq!(s.num_rows() + a.num_rows(), ln);
    }

    /// Sorting is a permutation and is ordered.
    #[test]
    fn sort_is_ordered_permutation(vals in prop::collection::vec(-1000i64..1000, 1..300)) {
        let n = vals.len();
        let mut cat = Catalog::new();
        cat.register("t", table_from((0..n as i64).collect(), vals.clone()));
        let plan = PlanBuilder::scan("t").sort(vec![SortKey::asc("v")]).build();
        let (r, _) = execute_query(&plan, &cat).expect("runs");
        let sorted = r.column("v").expect("col");
        let sorted = sorted.as_i64().expect("i64");
        prop_assert!(sorted.windows(2).all(|w| w[0] <= w[1]));
        let mut expected = vals.clone();
        expected.sort_unstable();
        let mut actual = sorted.to_vec();
        actual.sort_unstable();
        prop_assert_eq!(actual, expected);
    }

    /// Inner-join cardinality equals the key-frequency dot product.
    #[test]
    fn join_cardinality_oracle(left in prop::collection::vec(0i64..8, 0..100),
                               right in prop::collection::vec(0i64..8, 0..100)) {
        let expected: usize = (0..8)
            .map(|k| {
                left.iter().filter(|&&x| x == k).count()
                    * right.iter().filter(|&&x| x == k).count()
            })
            .sum();
        let mut cat = Catalog::new();
        let ln = left.len();
        cat.register("l", table_from(left, vec![0; ln]));
        cat.register(
            "r",
            Table::new(
                Schema::new(vec![Field::new("rk", DataType::Int64)]),
                vec![Column::Int64(right)],
            ).expect("table builds"),
        );
        let plan = PlanBuilder::scan("l")
            .inner_join(PlanBuilder::scan("r"), vec![("k", "rk")])
            .build();
        let (r, _) = execute_query(&plan, &cat).expect("runs");
        prop_assert_eq!(r.num_rows(), expected);
    }

    /// take() over a relation preserves per-row cell identity.
    #[test]
    fn relation_take_preserves_cells(vals in prop::collection::vec(-100i64..100, 1..100),
                                     picks in prop::collection::vec(any::<prop::sample::Index>(), 0..50)) {
        let n = vals.len();
        let rel = Relation::new(vec![
            ("v".to_string(), Arc::new(Column::Int64(vals.clone()))),
        ]).expect("relation builds");
        let sel: Vec<u32> = picks.iter().map(|ix| ix.index(n) as u32).collect();
        let taken = rel.take(&sel);
        for (out_row, &src) in sel.iter().enumerate() {
            prop_assert_eq!(
                taken.value(out_row, "v").expect("cell"),
                Value::I64(vals[src as usize])
            );
        }
    }
}

/// Ground-truth LIKE: exponential recursive descent over chars. Obviously
/// correct, unusably slow on big inputs — which is why `like_match` exists.
fn naive_like(text: &[char], pattern: &[char]) -> bool {
    match pattern.split_first() {
        None => text.is_empty(),
        Some(('%', rest)) => (0..=text.len()).any(|i| naive_like(&text[i..], rest)),
        Some(('_', rest)) => !text.is_empty() && naive_like(&text[1..], rest),
        Some((c, rest)) => text.first() == Some(c) && naive_like(&text[1..], rest),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// `like_match` (iterative, backtracking, with an ASCII byte fast path)
    /// agrees with the naive recursive reference on every ASCII input. The
    /// generator's `c`/`d` become `%`/`_` in the pattern only, so texts also
    /// contain characters the pattern can never match literally.
    #[test]
    fn like_matches_naive_reference_ascii(text in "[a-d]{0,8}", raw in "[a-d]{0,8}") {
        let pattern: String =
            raw.chars().map(|c| match c { 'c' => '%', 'd' => '_', c => c }).collect();
        let expected = naive_like(
            &text.chars().collect::<Vec<_>>(),
            &pattern.chars().collect::<Vec<_>>(),
        );
        prop_assert_eq!(wimpi_engine::like::like_match(&text, &pattern), expected,
            "text={:?} pattern={:?}", text, pattern);
    }

    /// Same agreement off the ASCII fast path: `b` maps to a multi-byte
    /// char in both text and pattern, forcing the char-wise slow path.
    #[test]
    fn like_matches_naive_reference_unicode(text in "[a-d]{0,8}", raw in "[a-d]{0,8}") {
        let widen = |s: &str, wild: bool| -> String {
            s.chars()
                .map(|c| match c {
                    'b' => 'é',
                    'c' if wild => '%',
                    'd' if wild => '_',
                    c => c,
                })
                .collect()
        };
        let text = widen(&text, false);
        let pattern = widen(&raw, true);
        let expected = naive_like(
            &text.chars().collect::<Vec<_>>(),
            &pattern.chars().collect::<Vec<_>>(),
        );
        prop_assert_eq!(wimpi_engine::like::like_match(&text, &pattern), expected,
            "text={:?} pattern={:?}", text, pattern);
    }
}

/// Builds a [`wimpi_engine::WorkProfile`] from two sampled 4-tuples (the
/// proptest shim's tuple strategies cap at four elements).
#[allow(clippy::type_complexity)]
fn profile_from(
    ((cpu, sr, sw, ra), (hb, ri, ro, nb)): ((u64, u64, u64, u64), (u64, u64, u64, u64)),
) -> wimpi_engine::WorkProfile {
    wimpi_engine::WorkProfile {
        cpu_ops: cpu,
        seq_read_bytes: sr,
        seq_write_bytes: sw,
        rand_accesses: ra,
        hash_bytes: hb,
        rows_in: ri,
        rows_out: ro,
        network_bytes: nb,
        pruned_morsels: 0,
        pruned_bytes: 0,
        peak_bytes: 0,
        spilled_bytes: 0,
        spill_read_retries: 0,
        spill_corruptions_detected: 0,
    }
}

type CounterRanges =
    (std::ops::Range<u64>, std::ops::Range<u64>, std::ops::Range<u64>, std::ops::Range<u64>);

/// Full-width counters so saturating sums are exercised routinely.
fn arb_counters() -> (CounterRanges, CounterRanges) {
    (
        (0..u64::MAX, 0..u64::MAX, 0..u64::MAX, 0..u64::MAX),
        (0..u64::MAX, 0..u64::MAX, 0..u64::MAX, 0..u64::MAX),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The morsel kernels reduce per-worker profiles with `merge`; any
    /// reduction tree must give the same total, so `merge` has to be
    /// associative and commutative — including at the u64 saturation
    /// boundary, which full-width counters reach on roughly half the cases.
    #[test]
    fn work_profile_merge_associative_commutative(a in arb_counters(),
                                                  b in arb_counters(),
                                                  c in arb_counters()) {
        let (a, b, c) = (profile_from(a), profile_from(b), profile_from(c));
        let mut ab = a;
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        prop_assert_eq!(ab, ba);

        let mut ab_then_c = ab;
        ab_then_c.merge(&c);
        let mut bc = b;
        bc.merge(&c);
        let mut a_then_bc = a;
        a_then_bc.merge(&bc);
        prop_assert_eq!(ab_then_c, a_then_bc);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `parse_budget` round-trip: formatting a whole number of units with
    /// any recognized suffix (IEC powers of 1024, SI powers of 1000, upper
    /// or lower case, optional padding) parses back to exactly
    /// `value × multiplier`. Values stay below 2^20 so every product is
    /// f64-exact.
    #[test]
    fn parse_budget_round_trips_whole_units(
        v in 1u64..(1 << 20),
        unit_idx in 0usize..8,
        upper in any::<bool>(),
        pad in any::<bool>(),
    ) {
        use wimpi_engine::governor::parse_budget;
        let units: [(&str, u64); 8] = [
            ("", 1),
            ("K", 1 << 10),
            ("KiB", 1 << 10),
            ("M", 1 << 20),
            ("MiB", 1 << 20),
            ("G", 1 << 30),
            ("KB", 1_000),
            ("MB", 1_000_000),
        ];
        let (unit, mult) = units[unit_idx];
        let unit = if upper { unit.to_ascii_uppercase() } else { unit.to_ascii_lowercase() };
        let s = if pad { format!("  {v} {unit} ") } else { format!("{v}{unit}") };
        prop_assert_eq!(parse_budget(&s), Ok(v * mult), "input {:?}", s);
    }

    /// Fractional round-trip through halves: `x.5` of a unit is exactly
    /// representable in f64, so `(2v+1)/2` units must parse to exactly
    /// `(2v+1) × multiplier / 2` bytes (all multipliers here are even).
    #[test]
    fn parse_budget_handles_fractional_units_exactly(
        v in 0u64..(1 << 19),
        unit_idx in 0usize..4,
    ) {
        use wimpi_engine::governor::parse_budget;
        let units: [(&str, u64); 4] = [("K", 1 << 10), ("MiB", 1 << 20), ("G", 1 << 30), ("MB", 1_000_000)];
        let (unit, mult) = units[unit_idx];
        let s = format!("{v}.5{unit}");
        let want = v * mult + mult / 2;
        prop_assert_eq!(parse_budget(&s), Ok(want), "input {:?}", s);
    }

    /// Zero and negatives are always a typed `NonPositive` rejection, with
    /// or without a unit.
    #[test]
    fn parse_budget_rejects_non_positive(
        v in 0i64..(1 << 20),
        unit_idx in 0usize..4,
        negative in any::<bool>(),
    ) {
        use wimpi_engine::governor::{parse_budget, BudgetParseError};
        // Positive values without a sign would parse fine; keep only the
        // non-positive inputs: any negative, or an unsigned zero.
        let v = if negative { v } else { 0 };
        let unit = ["", "K", "MiB", "GB"][unit_idx];
        let s = format!("{}{v}{unit}", if negative { "-" } else { "" });
        match parse_budget(&s) {
            Err(BudgetParseError::NonPositive(got)) => prop_assert_eq!(got, s),
            other => prop_assert!(false, "expected NonPositive for {:?}, got {:?}", s, other),
        }
    }
}
