//! Vectorized, column-at-a-time expression evaluation.
//!
//! Each primitive processes one whole column (MonetDB-style full
//! materialization) and records its work in a [`WorkProfile`]:
//! `cpu_ops` ≈ rows processed per primitive, `seq_read_bytes`/`seq_write_bytes`
//! the streamed column payloads. String predicates are evaluated once per
//! *dictionary value* and then mapped over codes.
//!
//! Element-wise primitives are parallelized per morsel via
//! [`par_map_concat`]: each worker fills its own output chunk and chunks are
//! concatenated in morsel order, so the result is identical to the serial
//! one bit for bit. Dictionary-level work (one LIKE per distinct value)
//! stays serial — it runs once per *dictionary*, and splitting rows would
//! multiply it, not shrink it. Work is charged once from global row counts,
//! never per worker.

use std::sync::Arc;

use crate::error::{EngineError, Result};
use crate::exec::parallel::{par_map_concat, EngineConfig};
use crate::expr::{BinOp, Expr};
use crate::like::like_match;
use crate::relation::Relation;
use crate::stats::WorkProfile;
use wimpi_storage::{Column, DictBuilder, DictColumn, Value};

/// Evaluates expressions against one relation, accumulating work counters.
pub struct Evaluator<'a> {
    rel: &'a Relation,
    prof: &'a mut WorkProfile,
    cfg: EngineConfig,
}

/// An evaluated operand: a full column or an unmaterialized scalar.
enum Ev {
    Col(Arc<Column>),
    Scalar(Value),
}

/// A numeric operand view: fixed-point mantissas with a scale, or floats.
/// `Int64` and `Date`/`Int32` map to scale-0 fixed point.
enum Fixed<'v> {
    Slice(&'v [i64]),
    Owned(Vec<i64>),
    Const(i64),
}

impl Fixed<'_> {
    #[inline]
    fn get(&self, i: usize) -> i64 {
        match self {
            Fixed::Slice(s) => s[i],
            Fixed::Owned(v) => v[i],
            Fixed::Const(c) => *c,
        }
    }
}

enum Float<'v> {
    Slice(&'v [f64]),
    Owned(Vec<f64>),
    Const(f64),
}

impl Float<'_> {
    #[inline]
    fn get(&self, i: usize) -> f64 {
        match self {
            Float::Slice(s) => s[i],
            Float::Owned(v) => v[i],
            Float::Const(c) => *c,
        }
    }
}

pub(crate) const POW10: [i64; 10] =
    [1, 10, 100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000, 100_000_000, 1_000_000_000];

/// Caps intermediate decimal scales; TPC-H's deepest products reach 4+2.
pub(crate) const MAX_SCALE: u8 = 6;

impl<'a> Evaluator<'a> {
    /// Creates a single-threaded evaluator over `rel`.
    pub fn new(rel: &'a Relation, prof: &'a mut WorkProfile) -> Self {
        Self::with_config(rel, prof, EngineConfig::serial())
    }

    /// Creates an evaluator whose element-wise primitives run morsel-parallel
    /// under `cfg`.
    pub fn with_config(rel: &'a Relation, prof: &'a mut WorkProfile, cfg: EngineConfig) -> Self {
        Self { rel, prof, cfg }
    }

    /// Evaluates `expr` to a full-length column.
    pub fn eval(&mut self, expr: &Expr) -> Result<Arc<Column>> {
        let n = self.rel.num_rows();
        match self.eval_ev(expr)? {
            Ev::Col(c) => Ok(c),
            Ev::Scalar(v) => Ok(Arc::new(Column::repeat(&v, n))),
        }
    }

    /// Evaluates a predicate to a boolean mask.
    pub fn eval_mask(&mut self, expr: &Expr) -> Result<Vec<bool>> {
        let c = self.eval(expr)?;
        Ok(c.as_bool()?.to_vec())
    }

    fn eval_ev(&mut self, expr: &Expr) -> Result<Ev> {
        match expr {
            Expr::Col(name) => Ok(Ev::Col(Arc::clone(self.rel.column(name)?))),
            Expr::Lit(v) => Ok(Ev::Scalar(v.clone())),
            Expr::Bin { op, left, right } => {
                let l = self.eval_ev(left)?;
                let r = self.eval_ev(right)?;
                self.eval_bin(*op, l, r)
            }
            Expr::Not(e) => {
                let v = self.eval_ev(e)?;
                let n = self.rel.num_rows();
                match v {
                    Ev::Scalar(Value::Bool(b)) => Ok(Ev::Scalar(Value::Bool(!b))),
                    Ev::Scalar(other) => {
                        Err(EngineError::Plan(format!("NOT applied to non-boolean {other:?}")))
                    }
                    Ev::Col(c) => {
                        let b = c.as_bool()?;
                        self.count(n as u64, n as u64, n as u64);
                        let out =
                            par_map_concat(&self.cfg, n, |r| b[r].iter().map(|x| !x).collect());
                        Ok(Ev::Col(Arc::new(Column::Bool(out))))
                    }
                }
            }
            Expr::Like { expr, pattern, negated } => {
                let v = self.eval_ev(expr)?;
                self.eval_like(v, pattern, *negated)
            }
            Expr::InList { expr, list, negated } => {
                let v = self.eval_ev(expr)?;
                self.eval_in(v, list, *negated)
            }
            Expr::Between { expr, low, high } => {
                // Desugar: expr >= low AND expr <= high.
                let desugared = (*expr.clone())
                    .gte(Expr::Lit(low.clone()))
                    .and((*expr.clone()).lte(Expr::Lit(high.clone())));
                self.eval_ev(&desugared)
            }
            Expr::Case { when, then, otherwise } => {
                let mask = self.eval_mask(when)?;
                let t = self.eval(then)?;
                let o = self.eval(otherwise)?;
                self.eval_case(&mask, &t, &o)
            }
            Expr::ExtractYear(e) => {
                let v = self.eval(e)?;
                let days = v.as_date()?;
                self.count(days.len() as u64, days.len() as u64 * 4, days.len() as u64 * 4);
                Ok(Ev::Col(Arc::new(Column::Int32(par_map_concat(&self.cfg, days.len(), |r| {
                    days[r].iter().map(|&d| wimpi_storage::Date32(d).year()).collect()
                })))))
            }
            Expr::Substr { expr, start, len } => {
                let v = self.eval(expr)?;
                let d = v.as_str()?;
                self.count(d.len() as u64, d.len() as u64 * 4, d.len() as u64 * 4);
                Ok(Ev::Col(Arc::new(Column::Str(substr_dict(d, *start, *len)))))
            }
        }
    }

    /// Records one primitive: `rows` ops, `read` and `written` bytes.
    fn count(&mut self, rows: u64, read: u64, written: u64) {
        self.prof.cpu_ops += rows;
        self.prof.seq_read_bytes += read;
        self.prof.seq_write_bytes += written;
    }

    fn eval_bin(&mut self, op: BinOp, l: Ev, r: Ev) -> Result<Ev> {
        if op.is_logical() {
            return self.eval_logical(op, l, r);
        }
        // Scalar-scalar folds immediately.
        if let (Ev::Scalar(a), Ev::Scalar(b)) = (&l, &r) {
            return Ok(Ev::Scalar(fold_scalar(op, a, b)?));
        }
        // String equality / inequality via dictionary masks.
        if is_str(&l) || is_str(&r) {
            return self.eval_str_cmp(op, l, r);
        }
        let n = self.rel.num_rows();
        let (wl, wr) = (ev_row_bytes(&l), ev_row_bytes(&r));
        let wout = if op.is_comparison() { 1 } else { 8 };
        // Try the fixed-point fast path first; fall back to floats.
        match (fixed_view(&l), fixed_view(&r)) {
            (Some((fa, sa)), Some((fb, sb))) => {
                self.charge_widths(n, wl, wr, wout);
                if op.is_comparison() {
                    Ok(Ev::Col(Arc::new(Column::Bool(cmp_fixed(
                        &self.cfg, op, &fa, sa, &fb, sb, n,
                    )))))
                } else {
                    arith_fixed(&self.cfg, op, &fa, sa, &fb, sb, n).map(|c| Ev::Col(Arc::new(c)))
                }
            }
            _ => {
                let fa = float_view(&l).ok_or_else(|| non_numeric(&l))?;
                let fb = float_view(&r).ok_or_else(|| non_numeric(&r))?;
                self.charge_widths(n, wl, wr, wout);
                if op.is_comparison() {
                    let out = par_map_concat(&self.cfg, n, |rg| {
                        rg.map(|i| cmp_f64(op, fa.get(i), fb.get(i))).collect()
                    });
                    Ok(Ev::Col(Arc::new(Column::Bool(out))))
                } else {
                    let out = par_map_concat(&self.cfg, n, |rg| {
                        rg.map(|i| arith_f64(op, fa.get(i), fb.get(i))).collect()
                    });
                    Ok(Ev::Col(Arc::new(Column::Float64(out))))
                }
            }
        }
    }

    /// Charges one vectorized primitive with byte-accurate column widths:
    /// dates and i32s stream 4 B/row, boolean masks 1 B/row — the
    /// difference decides whether Q6 is memory-bound on a Pi (DESIGN.md §2).
    fn charge_widths(&mut self, n: usize, wl: usize, wr: usize, wout: usize) {
        self.count(n as u64, (n * (wl + wr)) as u64, (n * wout) as u64);
    }

    fn eval_logical(&mut self, op: BinOp, l: Ev, r: Ev) -> Result<Ev> {
        let n = self.rel.num_rows();
        let to_mask = |ev: Ev| -> Result<Vec<bool>> {
            match ev {
                Ev::Scalar(Value::Bool(b)) => Ok(vec![b; n]),
                Ev::Scalar(v) => Err(EngineError::Plan(format!("logical op on non-boolean {v:?}"))),
                Ev::Col(c) => Ok(c.as_bool()?.to_vec()),
            }
        };
        let a = to_mask(l)?;
        let b = to_mask(r)?;
        self.count(n as u64, 2 * n as u64, n as u64);
        let out: Vec<bool> = match op {
            BinOp::And => par_map_concat(&self.cfg, n, |r| {
                a[r.clone()].iter().zip(&b[r]).map(|(x, y)| *x && *y).collect()
            }),
            BinOp::Or => par_map_concat(&self.cfg, n, |r| {
                a[r.clone()].iter().zip(&b[r]).map(|(x, y)| *x || *y).collect()
            }),
            _ => unreachable!("eval_logical only handles AND/OR"),
        };
        Ok(Ev::Col(Arc::new(Column::Bool(out))))
    }

    fn eval_str_cmp(&mut self, op: BinOp, l: Ev, r: Ev) -> Result<Ev> {
        let (col, scalar, flipped) = match (&l, &r) {
            (Ev::Col(c), Ev::Scalar(Value::Str(s))) => (c, s.clone(), false),
            (Ev::Scalar(Value::Str(s)), Ev::Col(c)) => (c, s.clone(), true),
            (Ev::Col(a), Ev::Col(b)) => {
                // Column-vs-column string comparison: decode row-wise.
                let da = a.as_str()?;
                let db = b.as_str()?;
                let n = da.len();
                self.count(n as u64, 2 * n as u64 * 4, n as u64);
                let out = par_map_concat(&self.cfg, n, |r| {
                    r.map(|i| cmp_ord(op, da.get(i).cmp(db.get(i)))).collect()
                });
                return Ok(Ev::Col(Arc::new(Column::Bool(out))));
            }
            _ => {
                return Err(EngineError::Plan(
                    "string comparison requires a string column".to_string(),
                ))
            }
        };
        let d = col.as_str()?;
        // One comparison per dictionary value, then a code-indexed map.
        let dict_mask: Vec<bool> = d
            .values()
            .iter()
            .map(|v| {
                let ord = if flipped {
                    scalar.as_str().cmp(v.as_str())
                } else {
                    v.as_str().cmp(scalar.as_str())
                };
                cmp_ord(op, ord)
            })
            .collect();
        let n = d.len();
        self.count((n + d.cardinality()) as u64, n as u64 * 4, n as u64);
        let codes = d.codes();
        let out = par_map_concat(&self.cfg, n, |r| {
            codes[r].iter().map(|&c| dict_mask[c as usize]).collect()
        });
        Ok(Ev::Col(Arc::new(Column::Bool(out))))
    }

    fn eval_like(&mut self, v: Ev, pattern: &str, negated: bool) -> Result<Ev> {
        match v {
            Ev::Scalar(Value::Str(s)) => {
                Ok(Ev::Scalar(Value::Bool(like_match(&s, pattern) != negated)))
            }
            Ev::Scalar(v) => Err(EngineError::Plan(format!("LIKE on non-string {v:?}"))),
            Ev::Col(c) => {
                let d = c.as_str()?;
                let dict_mask: Vec<bool> =
                    d.values().iter().map(|s| like_match(s, pattern) != negated).collect();
                let n = d.len();
                // Executed over the dictionary, but charged per *row* over
                // raw strings — what MonetDB (no dictionary on text) pays;
                // see DESIGN.md §2 on the comment-pool substitution.
                self.count(n as u64 * (2 + pattern.len() as u64 / 4), n as u64 * 32, n as u64);
                let codes = d.codes();
                let out = par_map_concat(&self.cfg, n, |r| {
                    codes[r].iter().map(|&c| dict_mask[c as usize]).collect()
                });
                Ok(Ev::Col(Arc::new(Column::Bool(out))))
            }
        }
    }

    fn eval_in(&mut self, v: Ev, list: &[Value], negated: bool) -> Result<Ev> {
        let n = self.rel.num_rows();
        match &v {
            Ev::Col(c) => match &**c {
                Column::Str(d) => {
                    let wanted: Vec<&str> = list.iter().filter_map(|v| v.as_str()).collect();
                    if wanted.len() != list.len() {
                        return Err(EngineError::Plan("IN list type mismatch".to_string()));
                    }
                    let dict_mask: Vec<bool> = d
                        .values()
                        .iter()
                        .map(|s| wanted.contains(&s.as_str()) != negated)
                        .collect();
                    self.count((n + d.cardinality() * wanted.len()) as u64, n as u64 * 4, n as u64);
                    let codes = d.codes();
                    Ok(Ev::Col(Arc::new(Column::Bool(par_map_concat(&self.cfg, n, |r| {
                        codes[r].iter().map(|&c| dict_mask[c as usize]).collect()
                    })))))
                }
                _ => {
                    let (f, scale) = fixed_view(&v).ok_or_else(|| non_numeric(&v))?;
                    let wanted: Vec<i64> = list
                        .iter()
                        .map(|l| {
                            fixed_scalar(l, scale).ok_or_else(|| {
                                EngineError::Plan("IN list type mismatch".to_string())
                            })
                        })
                        .collect::<Result<_>>()?;
                    self.count(n as u64 * wanted.len() as u64, n as u64 * 8, n as u64);
                    let out = par_map_concat(&self.cfg, n, |r| {
                        r.map(|i| wanted.contains(&f.get(i)) != negated).collect()
                    });
                    Ok(Ev::Col(Arc::new(Column::Bool(out))))
                }
            },
            Ev::Scalar(s) => Ok(Ev::Scalar(Value::Bool(list.contains(s) != negated))),
        }
    }

    fn eval_case(&mut self, mask: &[bool], t: &Column, o: &Column) -> Result<Ev> {
        let n = mask.len();
        self.count(n as u64, 2 * n as u64 * 8, n as u64 * 8);
        let out = match (t, o) {
            (Column::Decimal(a, sa), Column::Decimal(b, sb)) => {
                let s = (*sa).max(*sb);
                let fa = POW10[(s - sa) as usize];
                let fb = POW10[(s - sb) as usize];
                Column::Decimal(
                    par_map_concat(&self.cfg, n, |r| {
                        r.map(|i| if mask[i] { a[i] * fa } else { b[i] * fb }).collect()
                    }),
                    s,
                )
            }
            (Column::Int64(a), Column::Int64(b)) => {
                Column::Int64(par_map_concat(&self.cfg, n, |r| {
                    r.map(|i| if mask[i] { a[i] } else { b[i] }).collect()
                }))
            }
            (Column::Float64(a), Column::Float64(b)) => {
                Column::Float64(par_map_concat(&self.cfg, n, |r| {
                    r.map(|i| if mask[i] { a[i] } else { b[i] }).collect()
                }))
            }
            _ => {
                // Mixed numeric types fall back to floats.
                let ta = Ev::Col(Arc::new(t.clone()));
                let tb = Ev::Col(Arc::new(o.clone()));
                let fa = float_view(&ta)
                    .ok_or_else(|| EngineError::Plan("CASE branch not numeric".into()))?;
                let fb = float_view(&tb)
                    .ok_or_else(|| EngineError::Plan("CASE branch not numeric".into()))?;
                Column::Float64(par_map_concat(&self.cfg, n, |r| {
                    r.map(|i| if mask[i] { fa.get(i) } else { fb.get(i) }).collect()
                }))
            }
        };
        Ok(Ev::Col(Arc::new(out)))
    }
}

/// Streamed bytes per row an operand contributes (0 for unmaterialized
/// scalars; dictionary strings stream their 4-byte codes).
fn ev_row_bytes(ev: &Ev) -> usize {
    match ev {
        Ev::Scalar(_) => 0,
        Ev::Col(c) => match &**c {
            Column::Int64(_) | Column::Float64(_) | Column::Decimal(_, _) => 8,
            Column::Int32(_) | Column::Date(_) | Column::Str(_) => 4,
            Column::Bool(_) => 1,
        },
    }
}

fn is_str(ev: &Ev) -> bool {
    matches!(ev, Ev::Col(c) if matches!(&**c, Column::Str(_)))
        || matches!(ev, Ev::Scalar(Value::Str(_)))
}

fn non_numeric(ev: &Ev) -> EngineError {
    let what = match ev {
        Ev::Col(c) => format!("column of type {}", c.data_type()),
        Ev::Scalar(v) => format!("scalar {v:?}"),
    };
    EngineError::Plan(format!("expected numeric operand, got {what}"))
}

/// Views an operand as fixed-point mantissas plus scale.
fn fixed_view<'v>(ev: &'v Ev) -> Option<(Fixed<'v>, u8)> {
    match ev {
        Ev::Col(c) => match &**c {
            Column::Int64(v) => Some((Fixed::Slice(v), 0)),
            Column::Decimal(v, s) => Some((Fixed::Slice(v), *s)),
            Column::Int32(v) => Some((Fixed::Owned(v.iter().map(|&x| x as i64).collect()), 0)),
            Column::Date(v) => Some((Fixed::Owned(v.iter().map(|&x| x as i64).collect()), 0)),
            _ => None,
        },
        Ev::Scalar(v) => fixed_scalar_any(v),
    }
}

fn fixed_scalar_any(v: &Value) -> Option<(Fixed<'static>, u8)> {
    match v {
        Value::I64(x) => Some((Fixed::Const(*x), 0)),
        Value::I32(x) => Some((Fixed::Const(*x as i64), 0)),
        Value::Dec(d) => Some((Fixed::Const(d.mantissa()), d.scale())),
        Value::Date(d) => Some((Fixed::Const(d.0 as i64), 0)),
        _ => None,
    }
}

/// A scalar rescaled to `scale` mantissa units, if numeric.
pub(crate) fn fixed_scalar(v: &Value, scale: u8) -> Option<i64> {
    let (f, s) = fixed_scalar_any(v)?;
    let m = match f {
        Fixed::Const(m) => m,
        _ => unreachable!("scalars are Const"),
    };
    if s <= scale {
        Some(m * POW10[(scale - s) as usize])
    } else {
        Some(m / POW10[(s - scale) as usize])
    }
}

/// Views an operand as floats (integers/decimals are converted).
fn float_view<'v>(ev: &'v Ev) -> Option<Float<'v>> {
    match ev {
        Ev::Col(c) => match &**c {
            Column::Float64(v) => Some(Float::Slice(v)),
            Column::Int64(v) => Some(Float::Owned(v.iter().map(|&x| x as f64).collect())),
            Column::Int32(v) => Some(Float::Owned(v.iter().map(|&x| x as f64).collect())),
            Column::Decimal(v, s) => {
                let div = POW10[*s as usize] as f64;
                Some(Float::Owned(v.iter().map(|&x| x as f64 / div).collect()))
            }
            _ => None,
        },
        Ev::Scalar(v) => v.as_f64().map(Float::Const),
    }
}

pub(crate) fn cmp_ord(op: BinOp, ord: std::cmp::Ordering) -> bool {
    match op {
        BinOp::Eq => ord.is_eq(),
        BinOp::Ne => !ord.is_eq(),
        BinOp::Lt => ord.is_lt(),
        BinOp::Le => ord.is_le(),
        BinOp::Gt => ord.is_gt(),
        BinOp::Ge => ord.is_ge(),
        _ => unreachable!("cmp_ord on non-comparison"),
    }
}

fn cmp_fixed(
    cfg: &EngineConfig,
    op: BinOp,
    a: &Fixed,
    sa: u8,
    b: &Fixed,
    sb: u8,
    n: usize,
) -> Vec<bool> {
    let s = sa.max(sb);
    let fa = POW10[(s - sa) as usize] as i128;
    let fb = POW10[(s - sb) as usize] as i128;
    par_map_concat(cfg, n, |r| {
        r.map(|i| cmp_ord(op, (a.get(i) as i128 * fa).cmp(&(b.get(i) as i128 * fb)))).collect()
    })
}

pub(crate) fn cmp_f64(op: BinOp, a: f64, b: f64) -> bool {
    cmp_ord(op, a.total_cmp(&b))
}

pub(crate) fn arith_f64(op: BinOp, a: f64, b: f64) -> f64 {
    match op {
        BinOp::Add => a + b,
        BinOp::Sub => a - b,
        BinOp::Mul => a * b,
        BinOp::Div => a / b,
        _ => unreachable!("arith_f64 on non-arithmetic"),
    }
}

fn arith_fixed(
    cfg: &EngineConfig,
    op: BinOp,
    a: &Fixed,
    sa: u8,
    b: &Fixed,
    sb: u8,
    n: usize,
) -> Result<Column> {
    match op {
        BinOp::Add | BinOp::Sub => {
            let s = sa.max(sb);
            let fa = POW10[(s - sa) as usize];
            let fb = POW10[(s - sb) as usize];
            let out: Vec<i64> = if op == BinOp::Add {
                par_map_concat(cfg, n, |r| r.map(|i| a.get(i) * fa + b.get(i) * fb).collect())
            } else {
                par_map_concat(cfg, n, |r| r.map(|i| a.get(i) * fa - b.get(i) * fb).collect())
            };
            Ok(Column::Decimal(out, s))
        }
        BinOp::Mul => {
            let s = sa + sb;
            if s > MAX_SCALE {
                let div = POW10[(s - MAX_SCALE) as usize] as i128;
                let out: Vec<i64> = par_map_concat(cfg, n, |r| {
                    r.map(|i| ((a.get(i) as i128 * b.get(i) as i128) / div) as i64).collect()
                });
                Ok(Column::Decimal(out, MAX_SCALE))
            } else {
                let out: Vec<i64> =
                    par_map_concat(cfg, n, |r| r.map(|i| a.get(i) * b.get(i)).collect());
                Ok(Column::Decimal(out, s))
            }
        }
        BinOp::Div => {
            let da = POW10[sa as usize] as f64;
            let db = POW10[sb as usize] as f64;
            let out: Vec<f64> = par_map_concat(cfg, n, |r| {
                r.map(|i| (a.get(i) as f64 / da) / (b.get(i) as f64 / db)).collect()
            });
            Ok(Column::Float64(out))
        }
        _ => unreachable!("arith_fixed on non-arithmetic"),
    }
}

/// Scalar-scalar constant folding.
pub(crate) fn fold_scalar(op: BinOp, a: &Value, b: &Value) -> Result<Value> {
    if op.is_comparison() {
        return Ok(Value::Bool(cmp_ord(op, a.total_cmp(b))));
    }
    match (fixed_scalar_any(a), fixed_scalar_any(b)) {
        (Some((Fixed::Const(ma), sa)), Some((Fixed::Const(mb), sb))) if op != BinOp::Div => {
            let c = arith_fixed(
                &EngineConfig::serial(),
                op,
                &Fixed::Const(ma),
                sa,
                &Fixed::Const(mb),
                sb,
                1,
            )?;
            Ok(c.value(0))
        }
        _ => {
            let fa = a.as_f64().ok_or_else(|| EngineError::Plan("non-numeric fold".into()))?;
            let fb = b.as_f64().ok_or_else(|| EngineError::Plan("non-numeric fold".into()))?;
            Ok(Value::F64(arith_f64(op, fa, fb)))
        }
    }
}

/// Applies substring to every dictionary value, re-interning the results.
fn substr_dict(d: &DictColumn, start: usize, len: usize) -> DictColumn {
    let subs: Vec<String> = d
        .values()
        .iter()
        .map(|v| {
            let chars: Vec<char> = v.chars().collect();
            let from = (start.saturating_sub(1)).min(chars.len());
            let to = (from + len).min(chars.len());
            chars[from..to].iter().collect()
        })
        .collect();
    let mut b = DictBuilder::with_capacity(d.len());
    for &code in d.codes() {
        b.push(&subs[code as usize]);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, date, dec2, lit};
    use wimpi_storage::Date32;

    fn test_rel() -> Relation {
        Relation::new(vec![
            ("qty".into(), Arc::new(Column::Decimal(vec![100, 2400, 5000], 2))),
            ("price".into(), Arc::new(Column::Decimal(vec![10_000, 20_000, 30_000], 2))),
            ("disc".into(), Arc::new(Column::Decimal(vec![5, 6, 7], 2))),
            ("k".into(), Arc::new(Column::Int64(vec![1, 2, 3]))),
            (
                "ship".into(),
                Arc::new(Column::Date(vec![
                    Date32::from_ymd(1994, 1, 1).0,
                    Date32::from_ymd(1994, 6, 1).0,
                    Date32::from_ymd(1995, 1, 1).0,
                ])),
            ),
            ("mode".into(), Arc::new(Column::Str(["AIR", "MAIL", "AIR"].into_iter().collect()))),
        ])
        .unwrap()
    }

    fn eval_one(e: &Expr) -> Arc<Column> {
        let rel = test_rel();
        let mut p = WorkProfile::new();
        Evaluator::new(&rel, &mut p).eval(e).unwrap()
    }

    #[test]
    fn column_and_literal() {
        assert_eq!(eval_one(&col("k")).as_i64().unwrap(), &[1, 2, 3]);
        assert_eq!(eval_one(&lit(7i64)).as_i64().unwrap(), &[7, 7, 7]);
    }

    #[test]
    fn decimal_arithmetic_mixed_scales() {
        // price * (1 - disc): scale 2 × scale 2 → scale 4.
        let e = col("price").mul(lit(1i64).sub(col("disc")));
        let c = eval_one(&e);
        let (m, s) = c.as_decimal().unwrap();
        assert_eq!(s, 4);
        assert_eq!(m[0], 10_000 * 95); // 100.00 * 0.95 = 95.0000
    }

    #[test]
    fn comparison_across_scales() {
        let e = col("qty").lt(dec2("24"));
        let c = eval_one(&e);
        assert_eq!(c.as_bool().unwrap(), &[true, false, false]);
        // int literal against decimal column
        let e = col("qty").gte(lit(24i64));
        assert_eq!(eval_one(&e).as_bool().unwrap(), &[false, true, true]);
    }

    #[test]
    fn date_comparison() {
        let e = col("ship").lt(date("1994-06-01"));
        assert_eq!(eval_one(&e).as_bool().unwrap(), &[true, false, false]);
    }

    #[test]
    fn logical_connectives_and_not() {
        let e = col("k").gt(lit(1i64)).and(col("k").lt(lit(3i64)));
        assert_eq!(eval_one(&e).as_bool().unwrap(), &[false, true, false]);
        let e = col("k").eq(lit(1i64)).or(col("k").eq(lit(3i64)));
        assert_eq!(eval_one(&e).as_bool().unwrap(), &[true, false, true]);
        let e = col("k").eq(lit(2i64)).negate();
        assert_eq!(eval_one(&e).as_bool().unwrap(), &[true, false, true]);
    }

    #[test]
    fn string_equality_and_like() {
        let e = col("mode").eq(lit("AIR"));
        assert_eq!(eval_one(&e).as_bool().unwrap(), &[true, false, true]);
        let e = col("mode").like("%AI%");
        assert_eq!(eval_one(&e).as_bool().unwrap(), &[true, true, true]);
        let e = col("mode").not_like("M%");
        assert_eq!(eval_one(&e).as_bool().unwrap(), &[true, false, true]);
    }

    #[test]
    fn in_lists() {
        let e = col("mode").in_list(vec!["MAIL".into(), "SHIP".into()]);
        assert_eq!(eval_one(&e).as_bool().unwrap(), &[false, true, false]);
        let e = col("k").in_list(vec![Value::I64(1), Value::I64(3)]);
        assert_eq!(eval_one(&e).as_bool().unwrap(), &[true, false, true]);
        let e = col("k").not_in_list(vec![Value::I64(2)]);
        assert_eq!(eval_one(&e).as_bool().unwrap(), &[true, false, true]);
    }

    #[test]
    fn between_is_inclusive() {
        let e = col("k").between(Value::I64(2), Value::I64(3));
        assert_eq!(eval_one(&e).as_bool().unwrap(), &[false, true, true]);
    }

    #[test]
    fn case_expression() {
        let e = col("mode").eq(lit("AIR")).case(col("price"), dec2("0"));
        let c = eval_one(&e);
        let (m, s) = c.as_decimal().unwrap();
        assert_eq!(s, 2);
        assert_eq!(m, &[10_000, 0, 30_000]);
    }

    #[test]
    fn extract_year() {
        let e = col("ship").year();
        assert_eq!(eval_one(&e).as_i32().unwrap(), &[1994, 1994, 1995]);
    }

    #[test]
    fn substring_on_dict() {
        let e = col("mode").substr(1, 2);
        let c = eval_one(&e);
        let d = c.as_str().unwrap();
        assert_eq!(d.get(0), "AI");
        assert_eq!(d.get(1), "MA");
        assert_eq!(d.cardinality(), 2);
    }

    #[test]
    fn division_produces_float() {
        let e = col("price").div(col("qty"));
        let c = eval_one(&e);
        let f = c.as_f64().unwrap();
        assert!((f[0] - 100.0).abs() < 1e-9);
    }

    #[test]
    fn scale_capping_on_deep_products() {
        // (2+2)+2 = 6 = MAX_SCALE, and one more multiply stays at 6.
        let e = col("price").mul(col("disc")).mul(col("disc")).mul(col("disc"));
        let c = eval_one(&e);
        let (_, s) = c.as_decimal().unwrap();
        assert_eq!(s, 6);
    }

    #[test]
    fn work_is_counted() {
        let rel = test_rel();
        let mut p = WorkProfile::new();
        let e = col("price").mul(lit(1i64).sub(col("disc")));
        Evaluator::new(&rel, &mut p).eval(&e).unwrap();
        assert!(p.cpu_ops >= 6, "two primitives over three rows");
        assert!(p.seq_read_bytes > 0);
        assert!(p.seq_write_bytes > 0);
    }

    #[test]
    fn constant_folding() {
        let e = lit(2i64).add(lit(3i64)).mul(dec2("1.50"));
        let c = eval_one(&e);
        let (m, s) = c.as_decimal().unwrap();
        assert_eq!((m[0], s), (750, 2));
    }
}
