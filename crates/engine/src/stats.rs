//! Execution work profiles.
//!
//! Every operator records the *hardware-relevant* work it performs: streamed
//! bytes, random (cache-line-granularity) accesses, and data-dependent CPU
//! operations. A [`WorkProfile`] is the bridge between one real execution on
//! the host and the paper's ten hardware comparison points: `wimpi-hwsim`
//! prices the same profile under each machine's roofline model (DESIGN.md §2).

use std::ops::{Add, AddAssign};

/// Counters accumulated over one query execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkProfile {
    /// Data-dependent CPU work units (≈ a few instructions each): one per
    /// row per primitive for expression evaluation, two per hash
    /// build/probe, `log n` per sorted row, and so on.
    pub cpu_ops: u64,
    /// Bytes read as sequential streams (column scans, expression inputs).
    pub seq_read_bytes: u64,
    /// Bytes written as sequential streams (materialized intermediates).
    pub seq_write_bytes: u64,
    /// Random accesses at cache-line granularity: hash-table inserts and
    /// probes, gather loads.
    pub rand_accesses: u64,
    /// Peak-ish bytes held in hash tables (join builds + group states); the
    /// hardware model compares this against LLC size to decide whether
    /// random accesses hit cache or memory.
    pub hash_bytes: u64,
    /// Rows entering operators (a coarse size signal for overhead modelling).
    pub rows_in: u64,
    /// Rows in the final result.
    pub rows_out: u64,
    /// Bytes shipped over the network (filled in by the cluster driver; zero
    /// for single-node runs).
    pub network_bytes: u64,
    /// Morsels a zone-map consultation skipped entirely (no row could
    /// satisfy the scan's predicate). Zero unless
    /// [`EngineConfig::prune_scans`](crate::exec::parallel::EngineConfig)
    /// is on; pruning never changes row counts, only bytes and time.
    pub pruned_morsels: u64,
    /// Bytes a scan proved it did not need to stream — skipped morsels'
    /// predicate-column bytes plus conjuncts proven always-true. The
    /// hardware model credits these against the bandwidth roofline.
    pub pruned_bytes: u64,
    /// *Measured* peak bytes of governed memory (operator scratch plus
    /// materialized intermediates), taken from the query's
    /// [`MemoryReservation`](crate::governor::MemoryReservation) high-water
    /// mark. Unlike the other counters this is a maximum, not a sum; the
    /// engine ratchets it monotonically at operator boundaries so span
    /// deltas still telescope (each span's delta is the peak *growth* it
    /// observed, and the deltas sum to the root's final peak).
    pub peak_bytes: u64,
    /// Bytes an operator staged on the spill disk when even Grace
    /// partitioning could not fit the budget (DESIGN.md §16). Priced by
    /// `wimpi-hwsim` at microSD bandwidth, out and back.
    pub spilled_bytes: u64,
    /// Spill-chunk reads re-issued after a checksum mismatch.
    pub spill_read_retries: u64,
    /// Corrupted spill-chunk views detected at read time (each forced one
    /// retry unless the retry budget was already exhausted).
    pub spill_corruptions_detected: u64,
}

impl WorkProfile {
    /// An empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bytes that travel through the memory system sequentially.
    pub fn seq_bytes(&self) -> u64 {
        self.seq_read_bytes + self.seq_write_bytes
    }

    /// Combines per-worker counters into one total — the reduction the
    /// morsel-driven kernels apply to independently accumulated profiles.
    ///
    /// Saturating addition makes `merge` a total, associative, and
    /// commutative operation (a plain `+` would panic on overflow in debug
    /// builds, breaking associativity at the u64 boundary); the property
    /// tests in `tests/property_tests.rs` pin this down. Merging profiles
    /// charged from global row counts reproduces the serial totals exactly.
    pub fn merge(&mut self, o: &WorkProfile) {
        self.cpu_ops = self.cpu_ops.saturating_add(o.cpu_ops);
        self.seq_read_bytes = self.seq_read_bytes.saturating_add(o.seq_read_bytes);
        self.seq_write_bytes = self.seq_write_bytes.saturating_add(o.seq_write_bytes);
        self.rand_accesses = self.rand_accesses.saturating_add(o.rand_accesses);
        self.hash_bytes = self.hash_bytes.saturating_add(o.hash_bytes);
        self.rows_in = self.rows_in.saturating_add(o.rows_in);
        self.rows_out = self.rows_out.saturating_add(o.rows_out);
        self.network_bytes = self.network_bytes.saturating_add(o.network_bytes);
        self.pruned_morsels = self.pruned_morsels.saturating_add(o.pruned_morsels);
        self.pruned_bytes = self.pruned_bytes.saturating_add(o.pruned_bytes);
        self.peak_bytes = self.peak_bytes.saturating_add(o.peak_bytes);
        self.spilled_bytes = self.spilled_bytes.saturating_add(o.spilled_bytes);
        self.spill_read_retries = self.spill_read_retries.saturating_add(o.spill_read_retries);
        self.spill_corruptions_detected =
            self.spill_corruptions_detected.saturating_add(o.spill_corruptions_detected);
    }

    /// Per-counter saturating difference `self - before`: the inclusive work
    /// performed between two profile snapshots, which is exactly what a trace
    /// span records (counters only grow, so this is exact in practice).
    pub fn delta_since(&self, before: &WorkProfile) -> WorkProfile {
        WorkProfile {
            cpu_ops: self.cpu_ops.saturating_sub(before.cpu_ops),
            seq_read_bytes: self.seq_read_bytes.saturating_sub(before.seq_read_bytes),
            seq_write_bytes: self.seq_write_bytes.saturating_sub(before.seq_write_bytes),
            rand_accesses: self.rand_accesses.saturating_sub(before.rand_accesses),
            hash_bytes: self.hash_bytes.saturating_sub(before.hash_bytes),
            rows_in: self.rows_in.saturating_sub(before.rows_in),
            rows_out: self.rows_out.saturating_sub(before.rows_out),
            network_bytes: self.network_bytes.saturating_sub(before.network_bytes),
            pruned_morsels: self.pruned_morsels.saturating_sub(before.pruned_morsels),
            pruned_bytes: self.pruned_bytes.saturating_sub(before.pruned_bytes),
            peak_bytes: self.peak_bytes.saturating_sub(before.peak_bytes),
            spilled_bytes: self.spilled_bytes.saturating_sub(before.spilled_bytes),
            spill_read_retries: self.spill_read_retries.saturating_sub(before.spill_read_retries),
            spill_corruptions_detected: self
                .spill_corruptions_detected
                .saturating_sub(before.spill_corruptions_detected),
        }
    }

    /// The counters as named pairs with zero entries omitted — the generic
    /// form `wimpi-obs` spans carry (obs sits below the engine in the
    /// dependency graph and cannot name `WorkProfile`).
    pub fn counter_pairs(&self) -> Vec<(String, u64)> {
        [
            ("cpu_ops", self.cpu_ops),
            ("seq_read_bytes", self.seq_read_bytes),
            ("seq_write_bytes", self.seq_write_bytes),
            ("rand_accesses", self.rand_accesses),
            ("hash_bytes", self.hash_bytes),
            ("rows_in", self.rows_in),
            ("rows_out", self.rows_out),
            ("network_bytes", self.network_bytes),
            ("pruned_morsels", self.pruned_morsels),
            ("pruned_bytes", self.pruned_bytes),
            ("peak_bytes", self.peak_bytes),
            ("spilled_bytes", self.spilled_bytes),
            ("spill_read_retries", self.spill_read_retries),
            ("spill_corruptions_detected", self.spill_corruptions_detected),
        ]
        .into_iter()
        .filter(|&(_, v)| v != 0)
        .map(|(n, v)| (n.to_string(), v))
        .collect()
    }

    /// Scales every counter by an integer factor — used to extrapolate a
    /// measured SF to the paper's SF when the host can't hold the full data
    /// (all TPC-H choke-point work scales linearly in SF; DESIGN.md §4).
    pub fn scale(&self, factor: f64) -> WorkProfile {
        let s = |v: u64| (v as f64 * factor).round() as u64;
        WorkProfile {
            cpu_ops: s(self.cpu_ops),
            seq_read_bytes: s(self.seq_read_bytes),
            seq_write_bytes: s(self.seq_write_bytes),
            rand_accesses: s(self.rand_accesses),
            hash_bytes: s(self.hash_bytes),
            rows_in: s(self.rows_in),
            rows_out: s(self.rows_out),
            network_bytes: s(self.network_bytes),
            pruned_morsels: s(self.pruned_morsels),
            pruned_bytes: s(self.pruned_bytes),
            peak_bytes: s(self.peak_bytes),
            spilled_bytes: s(self.spilled_bytes),
            spill_read_retries: s(self.spill_read_retries),
            spill_corruptions_detected: s(self.spill_corruptions_detected),
        }
    }
}

impl Add for WorkProfile {
    type Output = WorkProfile;

    fn add(self, o: WorkProfile) -> WorkProfile {
        WorkProfile {
            cpu_ops: self.cpu_ops + o.cpu_ops,
            seq_read_bytes: self.seq_read_bytes + o.seq_read_bytes,
            seq_write_bytes: self.seq_write_bytes + o.seq_write_bytes,
            rand_accesses: self.rand_accesses + o.rand_accesses,
            hash_bytes: self.hash_bytes + o.hash_bytes,
            rows_in: self.rows_in + o.rows_in,
            rows_out: self.rows_out + o.rows_out,
            network_bytes: self.network_bytes + o.network_bytes,
            pruned_morsels: self.pruned_morsels + o.pruned_morsels,
            pruned_bytes: self.pruned_bytes + o.pruned_bytes,
            peak_bytes: self.peak_bytes + o.peak_bytes,
            spilled_bytes: self.spilled_bytes + o.spilled_bytes,
            spill_read_retries: self.spill_read_retries + o.spill_read_retries,
            spill_corruptions_detected: self.spill_corruptions_detected
                + o.spill_corruptions_detected,
        }
    }
}

impl AddAssign for WorkProfile {
    fn add_assign(&mut self, o: WorkProfile) {
        *self = *self + o;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_accumulates() {
        let a = WorkProfile { cpu_ops: 10, seq_read_bytes: 100, ..Default::default() };
        let b = WorkProfile { cpu_ops: 5, rand_accesses: 7, ..Default::default() };
        let c = a + b;
        assert_eq!(c.cpu_ops, 15);
        assert_eq!(c.seq_read_bytes, 100);
        assert_eq!(c.rand_accesses, 7);
    }

    #[test]
    fn seq_bytes_sums_read_write() {
        let p = WorkProfile { seq_read_bytes: 3, seq_write_bytes: 4, ..Default::default() };
        assert_eq!(p.seq_bytes(), 7);
    }

    #[test]
    fn merge_matches_add_and_saturates() {
        let a = WorkProfile { cpu_ops: 10, hash_bytes: 3, ..Default::default() };
        let b = WorkProfile { cpu_ops: 5, rows_in: 2, ..Default::default() };
        let mut m = a;
        m.merge(&b);
        assert_eq!(m, a + b);
        let mut s = WorkProfile { cpu_ops: u64::MAX - 1, ..Default::default() };
        s.merge(&WorkProfile { cpu_ops: 7, ..Default::default() });
        assert_eq!(s.cpu_ops, u64::MAX, "merge saturates instead of overflowing");
    }

    #[test]
    fn delta_since_subtracts_snapshots() {
        let before = WorkProfile { cpu_ops: 10, seq_read_bytes: 100, ..Default::default() };
        let after = WorkProfile { cpu_ops: 25, seq_read_bytes: 100, rows_in: 3, ..before };
        let d = after.delta_since(&before);
        assert_eq!(d.cpu_ops, 15);
        assert_eq!(d.seq_read_bytes, 0);
        assert_eq!(d.rows_in, 3);
        // Counters never shrink, but the subtraction still saturates.
        assert_eq!(before.delta_since(&after).cpu_ops, 0);
    }

    #[test]
    fn counter_pairs_name_nonzero_counters() {
        let p = WorkProfile { cpu_ops: 7, hash_bytes: 9, ..Default::default() };
        let pairs = p.counter_pairs();
        assert_eq!(
            pairs,
            vec![("cpu_ops".to_string(), 7), ("hash_bytes".to_string(), 9)],
            "zero counters are omitted"
        );
        assert!(WorkProfile::new().counter_pairs().is_empty());
    }

    #[test]
    fn scale_multiplies_counters() {
        let p = WorkProfile { cpu_ops: 10, seq_read_bytes: 11, ..Default::default() };
        let s = p.scale(2.5);
        assert_eq!(s.cpu_ops, 25);
        assert_eq!(s.seq_read_bytes, 28);
    }
}
