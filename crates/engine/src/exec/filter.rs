//! Filter: MonetDB-style candidate-propagating selection.
//!
//! A conjunctive predicate is evaluated conjunct by conjunct: the first
//! conjunct scans its full columns, every later conjunct is evaluated only
//! over the surviving candidates (gathering just the columns it touches).
//! For selective scans like Q6 this reads a fraction of the bytes a naive
//! evaluate-everything-fully filter would — exactly the candidate-list
//! optimization MonetDB applies, and the reason Q6 is cheap even on a
//! bandwidth-starved Pi (paper §II-D1).

use std::collections::BTreeSet;
use std::sync::Arc;

use crate::error::Result;
use crate::eval::Evaluator;
use crate::exec::parallel::EngineConfig;
use crate::exec::{ensure_u32_indexable, expr_sketch, prune};
use crate::expr::Expr;
use crate::governor::QueryContext;
use crate::optimizer::split_conjuncts;
use crate::relation::Relation;
use crate::stats::WorkProfile;
use wimpi_obs::Tracer;
use wimpi_storage::{selection, Column};

/// Evaluates `predicate` with candidate propagation, then gathers the
/// surviving rows of every column. Each non-constant conjunct becomes an
/// `eval` child span when tracing (rows in = candidates it scanned, rows
/// out = survivors).
///
/// When `table` is the sealed table this filter scans (passed only under
/// `cfg.prune_scans`), a zone-map pre-pass may seed the candidate list
/// with whole morsels proven dead and elide conjuncts proven always-true
/// (DESIGN.md §14) — same survivors, fewer bytes.
pub fn exec_filter(
    rel: &Relation,
    predicate: &Expr,
    table: Option<&wimpi_storage::Table>,
    prof: &mut WorkProfile,
    cfg: &EngineConfig,
    tracer: &Tracer,
    ctx: &QueryContext,
) -> Result<Relation> {
    ensure_u32_indexable(rel.num_rows(), "filter")?;
    let mut conjuncts = Vec::new();
    split_conjuncts(predicate.clone(), &mut conjuncts);
    let mut sel: Option<Vec<u32>> = None;
    let mut always_true: Vec<bool> = Vec::new();
    let mut widths: Vec<u64> = Vec::new();
    if cfg.prune_scans {
        if let Some(fp) =
            table.and_then(|t| prune::prune_filter(&conjuncts, rel, t, cfg.morsel_rows))
        {
            prof.pruned_morsels += fp.pruned_morsels;
            prof.pruned_bytes += fp.pruned_bytes;
            if fp.pruned_morsels > 0 {
                // Seed the candidate list with only the surviving morsels'
                // rows; the first conjunct then scans candidates instead of
                // full columns.
                sel = Some(fp.keep);
            }
            always_true = fp.always_true;
            widths = fp.widths;
        }
    }
    for (ci, conjunct) in conjuncts.into_iter().enumerate() {
        ctx.checkpoint()?;
        if always_true.get(ci).copied().unwrap_or(false) {
            // Proven true over every candidate morsel: skip the evaluation,
            // crediting the bytes it would have streamed over the current
            // candidates.
            let cand = sel.as_ref().map_or(rel.num_rows(), Vec::len) as u64;
            prof.pruned_bytes += cand * widths[ci];
            continue;
        }
        let needed: BTreeSet<String> = conjunct.column_set();
        if needed.is_empty() {
            // Constant conjunct: evaluate it once on a 1-row dummy relation
            // instead of gathering (or repeating over) full columns. A false
            // constant empties the selection; a true one is a no-op.
            let one = Relation::new(vec![("__const".into(), Arc::new(Column::Bool(vec![true])))])?;
            prof.cpu_ops += 1;
            let keep = Evaluator::new(&one, prof).eval_mask(&conjunct)?[0];
            if !keep {
                sel = Some(Vec::new());
                break;
            }
            if sel.is_none() {
                sel = Some(selection::identity(rel.num_rows()));
            }
            continue;
        }
        let traced = tracer.is_enabled();
        if traced {
            tracer.push("eval", &expr_sketch(&conjunct));
        }
        let before = *prof;
        let rows_scanned;
        let result: Result<Vec<u32>> = match sel.take() {
            None => {
                rows_scanned = rel.num_rows() as u64;
                Evaluator::with_config(rel, prof, *cfg)
                    .eval_mask(&conjunct)
                    .map(|mask| selection::from_mask(&mask))
            }
            Some(candidates) => {
                rows_scanned = candidates.len() as u64;
                if candidates.is_empty() {
                    if traced {
                        tracer.pop(0, 0, Vec::new());
                    }
                    sel = Some(candidates);
                    break;
                }
                // Gather only the columns this conjunct touches, only for
                // the surviving candidates.
                let fields = rel
                    .fields()
                    .iter()
                    .filter(|(n, _)| needed.contains(n))
                    .map(|(n, c)| (n.clone(), Arc::new(c.take(&candidates))))
                    .collect::<Vec<_>>();
                let sub = Relation::new(fields)?;
                prof.seq_read_bytes += sub.stream_bytes() as u64;
                prof.seq_write_bytes += sub.stream_bytes() as u64;
                prof.cpu_ops += candidates.len() as u64;
                Evaluator::with_config(&sub, prof, *cfg).eval_mask(&conjunct).map(|mask| {
                    // Recycled thread-local buffer: the conjunct loop would
                    // otherwise allocate a fresh survivor list per conjunct.
                    let mut kept = selection::take_scratch();
                    kept.reserve(candidates.len());
                    for (&i, &m) in candidates.iter().zip(&mask) {
                        if m {
                            kept.push(i);
                        }
                    }
                    selection::put_scratch(candidates);
                    kept
                })
            }
        };
        if traced {
            let survivors = result.as_ref().map(|s| s.len() as u64).unwrap_or(0);
            tracer.pop(rows_scanned, survivors, prof.delta_since(&before).counter_pairs());
        }
        sel = Some(result?);
    }
    let sel = sel.unwrap_or_default();
    let out = rel.take(&sel);
    charge_gather(rel, &out, sel.len(), prof);
    selection::put_scratch(sel);
    Ok(out)
}

/// Charges a gather/materialization. Selection vectors are sorted, so the
/// gather walks every column *forward* — it is priced as streaming (reads
/// of the touched fraction plus the written output), not as random access;
/// random pricing is reserved for hash probes.
pub(crate) fn charge_gather(
    input: &Relation,
    output: &Relation,
    nsel: usize,
    prof: &mut WorkProfile,
) {
    prof.seq_read_bytes += output.stream_bytes() as u64;
    prof.seq_write_bytes += output.stream_bytes() as u64;
    prof.cpu_ops += (nsel * input.num_columns().max(1)) as u64;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use std::sync::Arc;
    use wimpi_storage::Column;

    fn exec_filter(rel: &Relation, pred: &Expr, prof: &mut WorkProfile) -> Result<Relation> {
        let ctx = QueryContext::default();
        super::exec_filter(rel, pred, None, prof, &EngineConfig::serial(), Tracer::off(), &ctx)
    }

    fn rel() -> Relation {
        Relation::new(vec![
            ("k".into(), Arc::new(Column::Int64(vec![1, 2, 3, 4]))),
            ("v".into(), Arc::new(Column::Int64(vec![10, 20, 30, 40]))),
        ])
        .unwrap()
    }

    #[test]
    fn keeps_matching_rows() {
        let mut p = WorkProfile::new();
        let out = exec_filter(&rel(), &col("k").gt(lit(2i64)), &mut p).unwrap();
        assert_eq!(out.num_rows(), 2);
        assert_eq!(out.column("v").unwrap().as_i64().unwrap(), &[30, 40]);
    }

    #[test]
    fn conjunction_propagates_candidates() {
        let mut p = WorkProfile::new();
        let pred = col("k").gt(lit(1i64)).and(col("v").lt(lit(40i64)));
        let out = exec_filter(&rel(), &pred, &mut p).unwrap();
        assert_eq!(out.column("k").unwrap().as_i64().unwrap(), &[2, 3]);
        // Compare work against a wider relation: the second conjunct only
        // touched rows surviving the first.
        assert!(p.cpu_ops < 4 * 10, "candidate propagation keeps work small");
    }

    #[test]
    fn selective_first_conjunct_reduces_bytes() {
        // A 1%-selective first conjunct should make the whole filter much
        // cheaper than a 100%-selective one.
        let n = 10_000i64;
        let rel = Relation::new(vec![
            ("a".into(), Arc::new(Column::Int64((0..n).collect()))),
            ("b".into(), Arc::new(Column::Int64((0..n).rev().collect()))),
        ])
        .unwrap();
        let mut cheap = WorkProfile::new();
        exec_filter(&rel, &col("a").lt(lit(100i64)).and(col("b").gt(lit(0i64))), &mut cheap)
            .unwrap();
        let mut dear = WorkProfile::new();
        exec_filter(&rel, &col("a").lt(lit(n)).and(col("b").gt(lit(0i64))), &mut dear).unwrap();
        assert!(
            cheap.seq_bytes() < dear.seq_bytes() / 2,
            "selective scans must stream fewer bytes: {} vs {}",
            cheap.seq_bytes(),
            dear.seq_bytes()
        );
    }

    #[test]
    fn empty_result_short_circuits() {
        let mut p = WorkProfile::new();
        let pred = col("k").gt(lit(100i64)).and(col("v").lt(lit(0i64)));
        let out = exec_filter(&rel(), &pred, &mut p).unwrap();
        assert_eq!(out.num_rows(), 0);
        assert_eq!(out.num_columns(), 2);
    }

    #[test]
    fn constant_conjuncts_keep_or_clear_candidates() {
        // A later conjunct with an empty column set must not silently drop
        // the surviving candidates (it used to build a 0-row sub-relation
        // whose empty mask zipped everything away).
        let mut p = WorkProfile::new();
        let pred = col("k").gt(lit(1i64)).and(lit(true));
        let out = exec_filter(&rel(), &pred, &mut p).unwrap();
        assert_eq!(out.column("k").unwrap().as_i64().unwrap(), &[2, 3, 4]);

        let pred = col("k").gt(lit(1i64)).and(lit(false));
        let out = exec_filter(&rel(), &pred, &mut p).unwrap();
        assert_eq!(out.num_rows(), 0);

        // Constant-first conjunctions skip the full-column evaluation too.
        let pred = Expr::Lit(wimpi_storage::Value::Bool(true)).and(col("k").lt(lit(3i64)));
        let out = exec_filter(&rel(), &pred, &mut p).unwrap();
        assert_eq!(out.column("k").unwrap().as_i64().unwrap(), &[1, 2]);
    }

    #[test]
    fn disjunctions_still_work() {
        let mut p = WorkProfile::new();
        let pred = col("k").eq(lit(1i64)).or(col("k").eq(lit(4i64)));
        let out = exec_filter(&rel(), &pred, &mut p).unwrap();
        assert_eq!(out.column("k").unwrap().as_i64().unwrap(), &[1, 4]);
    }
}
