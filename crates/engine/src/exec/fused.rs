//! Fused morsel-at-a-time execution (DESIGN.md §13).
//!
//! The materializing interpreter runs scan → filter → eval → aggregate as
//! separate full-column passes, paying memory bandwidth — the scarcest
//! resource on a wimpy node — for every intermediate. The fused executor
//! collapses that pipeline: each worker walks one morsel of the *base*
//! relation, evaluates the filter conjuncts into a reusable selection
//! vector (candidate-propagating, like the materializing filter, but per
//! morsel and without gathering sub-relations), evaluates group-key and
//! aggregate-input expressions with compiled [`bytecode::Program`]s over
//! the survivors, and folds the rows straight into a thread-local
//! [`MorselAgg`] partial. Partials merge in morsel-index order — the same
//! merge as the materializing aggregate — so results are bit-identical to
//! the materializing executor at any thread count.
//!
//! Determinism argument: morsel boundaries depend only on the row count and
//! morsel size; each partial sees exactly the rows of its morsel in row
//! order; `first_rows` hold *global* base-table row ids, so the merged
//! group order (first appearance) and every accumulator value match the
//! materializing path's, whose partials over the filtered relation see the
//! same rows in the same relative order. The VM emits `key_values`-encoded
//! slots and [`SlotAgg`] accumulators mirror [`aggregate`]'s exact-arithmetic
//! states, so no float is combined in a different order than before.
//!
//! Fallback rules: plan shapes or expressions the bytecode compiler cannot
//! express (joins inside the pipeline stay as a materialized source; string
//! column-vs-column compares, `SUBSTR`, float sums/avgs, min/max) run the
//! materializing operators in place over the already-executed source —
//! transparently, with identical results, errors, and charges to
//! `Executor::Materialize`. A budget too small for the merged group table
//! takes the same fallback, which then Grace-partitions exactly like the
//! materializing aggregate.

use std::sync::Arc;
use std::time::Instant;

use super::aggregate::{self, MorselAgg, SlotAgg};
use super::bytecode::{self, Program};
use super::parallel::{morsel_ranges, run_morsels, run_morsels_spanned, EngineConfig};
use super::{ensure_u32_indexable, expr_sketch, filter, prune};
use crate::error::Result;
use crate::expr::{BinOp, Expr};
use crate::governor::QueryContext;
use crate::optimizer::split_conjuncts;
use crate::plan::{AggExpr, AggFunc, LogicalPlan};
use crate::relation::Relation;
use crate::stats::WorkProfile;
use wimpi_obs::{Span, Tracer};
use wimpi_storage::{selection, Column};

/// One compiled group key: the program computing its slots, plus the source
/// column when the key is a plain column reference (its output is then a
/// direct gather of the base column — bit-identical to the materializing
/// take-of-filtered-take, including shared string dictionaries).
struct KeyPlan {
    prog: Program,
    source: Option<Arc<Column>>,
}

/// One compiled filter conjunct. A top-level OR compiles to its disjuncts'
/// separate AND-chains so the filter can cascade: each disjunct's own most
/// selective conjunct (often a single-pass `Quick` form) prunes candidates
/// before the wider arms are touched, instead of every arm evaluating over
/// every row the way one flat program would.
pub(super) enum Pred {
    One(Program),
    /// Disjuncts, each an AND-chain of programs; a row survives when any
    /// chain passes it.
    AnyOf(Vec<Vec<Program>>),
}

impl Pred {
    fn filter_range(&self, r: std::ops::Range<usize>, out: &mut Vec<u32>) {
        match self {
            Pred::One(p) => p.filter_range(r, out),
            Pred::AnyOf(chains) => {
                let mut cand = selection::take_scratch();
                cand.extend(r.map(|i| i as u32));
                or_cascade(chains, &cand, out);
                selection::put_scratch(cand);
            }
        }
    }

    fn filter_sel(&self, cand: &[u32], out: &mut Vec<u32>) {
        match self {
            Pred::One(p) => p.filter_sel(cand, out),
            Pred::AnyOf(chains) => or_cascade(chains, cand, out),
        }
    }

    /// Bytes-per-row pricing: the flat program's width — the materializing
    /// evaluator reads every arm for every row, and the charge model stays
    /// invariant to how the cascade happened to prune.
    pub(super) fn width_bytes(&self) -> u64 {
        match self {
            Pred::One(p) => p.width_bytes(),
            Pred::AnyOf(chains) => chains.iter().flatten().map(Program::width_bytes).sum(),
        }
    }
}

/// Runs each disjunct's AND-chain over the candidates not yet accepted,
/// unioning survivors. Disjunct sets are disjoint by construction (later
/// chains only see rows earlier chains rejected), so sorting the
/// concatenation restores ascending row order — exactly the rows a flat
/// evaluation of the OR would keep.
fn or_cascade(chains: &[Vec<Program>], cand: &[u32], out: &mut Vec<u32>) {
    let mut remaining = selection::take_scratch();
    remaining.extend_from_slice(cand);
    let mut pass = selection::take_scratch();
    let mut tmp = selection::take_scratch();
    let start = out.len();
    for chain in chains {
        if remaining.is_empty() {
            break;
        }
        pass.clear();
        chain[0].filter_sel(&remaining, &mut pass);
        for conj in &chain[1..] {
            if pass.is_empty() {
                break;
            }
            tmp.clear();
            conj.filter_sel(&pass, &mut tmp);
            std::mem::swap(&mut pass, &mut tmp);
        }
        if pass.is_empty() {
            continue;
        }
        // remaining -= pass (both ascending).
        tmp.clear();
        let mut pi = 0;
        for &row in remaining.iter() {
            if pi < pass.len() && pass[pi] == row {
                pi += 1;
            } else {
                tmp.push(row);
            }
        }
        std::mem::swap(&mut remaining, &mut tmp);
        out.extend_from_slice(&pass);
    }
    out[start..].sort_unstable();
    selection::put_scratch(remaining);
    selection::put_scratch(pass);
    selection::put_scratch(tmp);
}

/// Splits an OR tree into disjuncts (mirror of `split_conjuncts`).
fn split_disjuncts(e: &Expr, out: &mut Vec<Expr>) {
    match e {
        Expr::Bin { op: BinOp::Or, left, right } => {
            split_disjuncts(left, out);
            split_disjuncts(right, out);
        }
        other => out.push(other.clone()),
    }
}

/// A conjunct after compilation: constant-folded away, or an executable
/// predicate.
pub(super) enum Compiled {
    ConstTrue,
    ConstFalse,
    Pred(Pred),
}

/// Compiles one already-split conjunct, recognizing top-level OR chains.
/// `None` means some sub-expression needs the materializing fallback.
pub(super) fn compile_conjunct(c: &Expr, src: &Relation) -> Option<Compiled> {
    let mut disjuncts = Vec::new();
    split_disjuncts(c, &mut disjuncts);
    if disjuncts.len() > 1 {
        let mut chains = Vec::new();
        for d in &disjuncts {
            let mut parts = Vec::new();
            split_conjuncts(d.clone(), &mut parts);
            let mut chain = Vec::new();
            let mut dead = false;
            for p in parts {
                let prog = Program::compile(&p, src)?;
                if prog.out() != bytecode::Ty::Bool {
                    return None;
                }
                match prog.const_bool() {
                    Some(true) => {}
                    Some(false) => {
                        dead = true;
                        break;
                    }
                    None => chain.push(prog),
                }
            }
            if dead {
                continue; // a constant-false arm never accepts anything
            }
            if chain.is_empty() {
                return Some(Compiled::ConstTrue); // a constant-true arm accepts everything
            }
            chains.push(chain);
        }
        return Some(if chains.is_empty() {
            Compiled::ConstFalse
        } else {
            Compiled::Pred(Pred::AnyOf(chains))
        });
    }
    let prog = Program::compile(c, src)?;
    if prog.out() != bytecode::Ty::Bool {
        return None;
    }
    Some(match prog.const_bool() {
        Some(true) => Compiled::ConstTrue,
        Some(false) => Compiled::ConstFalse,
        None => Compiled::Pred(Pred::One(prog)),
    })
}

/// A fully compiled scan→filter→eval→aggregate pipeline.
struct Pipeline {
    /// Filter conjuncts in execution order (innermost filter first), with
    /// constant-true conjuncts dropped at compile time.
    conjuncts: Vec<Pred>,
    /// A conjunct folded to constant false: no row survives.
    const_false: bool,
    keys: Vec<KeyPlan>,
    /// One program per aggregate input; `None` for `count(*)`.
    agg_progs: Vec<Option<Program>>,
    kinds: Vec<SlotAgg>,
}

impl Pipeline {
    /// Compiles the filters, keys, and aggregate inputs against the source
    /// relation; `None` means the shape needs the materializing fallback.
    fn compile(
        filters: &[&Expr],
        group_by: &[(Expr, String)],
        aggs: &[AggExpr],
        src: &Relation,
    ) -> Option<Pipeline> {
        let mut conjuncts = Vec::new();
        let mut const_false = false;
        for f in filters {
            let mut parts = Vec::new();
            split_conjuncts((*f).clone(), &mut parts);
            for c in parts {
                match compile_conjunct(&c, src)? {
                    Compiled::ConstTrue => {}
                    Compiled::ConstFalse => const_false = true,
                    Compiled::Pred(p) => conjuncts.push(p),
                }
            }
        }
        let mut keys = Vec::with_capacity(group_by.len());
        for (e, _) in group_by {
            let prog = Program::compile(e, src)?;
            let source = match e {
                Expr::Col(name) => Some(Arc::clone(src.column(name).ok()?)),
                _ => None,
            };
            if source.is_none() && prog.out() == bytecode::Ty::Str {
                return None; // computed string keys cannot be rebuilt from slots
            }
            keys.push(KeyPlan { prog, source });
        }
        let mut agg_progs = Vec::with_capacity(aggs.len());
        let mut kinds = Vec::with_capacity(aggs.len());
        for agg in aggs {
            match (&agg.expr, agg.func) {
                (None, AggFunc::CountStar) => {
                    agg_progs.push(None);
                    kinds.push(SlotAgg::CountStar);
                }
                (Some(e), func) if func != AggFunc::CountStar => {
                    let prog = Program::compile(e, src)?;
                    let kind = SlotAgg::bind(func, Some(prog.out().data_type()))?;
                    agg_progs.push(Some(prog));
                    kinds.push(kind);
                }
                _ => return None, // malformed pairing: let the evaluator report it
            }
        }
        Some(Pipeline { conjuncts, const_false, keys, agg_progs, kinds })
    }
}

/// Executes an `Aggregate` node (and the chain of `Filter`s beneath it) as
/// one fused pipeline over the materialized source. Called from the
/// interpreter's `Aggregate` arm when `cfg.executor == Executor::Fused`; the
/// enclosing span (op `fused`) is already open.
#[allow(clippy::too_many_arguments)]
pub(super) fn exec_fused(
    input: &LogicalPlan,
    group_by: &[(Expr, String)],
    aggs: &[AggExpr],
    catalog: &wimpi_storage::Catalog,
    prof: &mut WorkProfile,
    cfg: &EngineConfig,
    tracer: &Tracer,
    ctx: &QueryContext,
) -> Result<(u64, Relation)> {
    // Peel the filter chain; everything below it (scan, joins, …) executes
    // through the materializing interpreter and becomes the fused source.
    let mut filters: Vec<&Expr> = Vec::new();
    let mut src_plan = input;
    while let LogicalPlan::Filter { input, predicate } = src_plan {
        filters.push(predicate);
        src_plan = input;
    }
    filters.reverse(); // innermost (first-executed) conjuncts first
    let src = super::exec_node(src_plan, catalog, prof, cfg, tracer, ctx)?;
    let rows_in = src.num_rows() as u64;
    ensure_u32_indexable(src.num_rows(), "fused")?;

    let pipe = match Pipeline::compile(&filters, group_by, aggs, &src) {
        Some(p) => p,
        None => return materializing_tail(src, &filters, group_by, aggs, prof, cfg, tracer, ctx),
    };

    // Zone-map pruning (opt-in, DESIGN.md §14): only when the pipeline's
    // source is a bare table scan can morsel offsets be resolved against the
    // table's sealed summaries. Verdicts are sound, so pruning changes no
    // survivor, group, or row count — only which bytes get streamed.
    let pruner = match (cfg.prune_scans, src_plan) {
        (true, LogicalPlan::Scan { table, .. }) => catalog
            .table(table)
            .ok()
            .and_then(|t| prune::ScanPruner::new(t, &pipe.conjuncts, src.num_rows())),
        _ => None,
    };

    let n = src.num_rows();
    let nconj = pipe.conjuncts.len();
    let naggs = aggs.len();
    let sink = tracer.morsel_sink();
    let stage_started = tracer.is_enabled().then(Instant::now);
    let ranges = morsel_ranges(n, cfg.morsel_rows);
    let results = run_morsels_spanned(cfg, &ranges, &sink, |_, r| {
        let mut partial = MorselAgg::for_slots(&pipe.kinds);
        let mut examined = vec![0u64; nconj];
        let mut pruned = (0u64, 0u64); // (morsels skipped, bytes skipped)
        if ctx.interrupted() {
            return (partial, examined, 0u64, pruned);
        }
        let verdicts = pruner.as_ref().map(|p| p.verdicts(&r));
        if verdicts.as_ref().is_some_and(|v| v.contains(&prune::Verdict::False)) {
            // No row in this morsel can pass: skip it without touching the
            // data. The credited bytes are the first conjunct's full-column
            // scan — what the unpruned loop is guaranteed to have streamed.
            pruned = (1, r.len() as u64 * pipe.conjuncts[0].width_bytes());
            return (partial, examined, 0u64, pruned);
        }
        // Filter stage: candidate propagation through a recycled selection
        // vector, no intermediate columns. `dense` tracks whether `sel`
        // still implicitly means "every row of the morsel" (no conjunct has
        // run yet), so an always-true first conjunct can be skipped too.
        let mut sel = selection::take_scratch();
        let mut dense = true;
        if !pipe.const_false {
            for (k, conj) in pipe.conjuncts.iter().enumerate() {
                if verdicts.as_ref().is_some_and(|v| v[k] == prune::Verdict::True) {
                    // Proven true for every row here: elide the evaluation
                    // and credit the bytes it would have streamed.
                    let rows = if dense { r.len() } else { sel.len() } as u64;
                    pruned.1 += rows * conj.width_bytes();
                    continue;
                }
                if dense {
                    examined[k] = r.len() as u64;
                    conj.filter_range(r.clone(), &mut sel);
                    dense = false;
                } else {
                    examined[k] = sel.len() as u64;
                    if sel.is_empty() {
                        break;
                    }
                    let mut next = selection::take_scratch();
                    conj.filter_sel(&sel, &mut next);
                    selection::put_scratch(std::mem::replace(&mut sel, next));
                }
            }
        }
        if dense && !pipe.const_false {
            sel.extend(r.clone().map(|i| i as u32));
        }
        let nsel = sel.len() as u64;
        // Eval + fold stage: run each program once over the survivors, then
        // push rows into the morsel-local table keyed by *global* row ids.
        let mut keybufs: Vec<Vec<i64>> = Vec::with_capacity(pipe.keys.len());
        for kp in &pipe.keys {
            let mut buf = bytecode::take_slots();
            kp.prog.eval_sel(&sel, &mut buf);
            keybufs.push(buf);
        }
        let mut aggbufs: Vec<Option<Vec<i64>>> = Vec::with_capacity(naggs);
        for prog in &pipe.agg_progs {
            aggbufs.push(prog.as_ref().map(|p| {
                let mut buf = bytecode::take_slots();
                p.eval_sel(&sel, &mut buf);
                buf
            }));
        }
        let mut gids = selection::take_scratch();
        partial.push_slot_batch(&keybufs, &sel, &aggbufs, &pipe.kinds, &mut gids);
        selection::put_scratch(gids);
        for buf in keybufs {
            bytecode::put_slots(buf);
        }
        for buf in aggbufs.into_iter().flatten() {
            bytecode::put_slots(buf);
        }
        selection::put_scratch(sel);
        (partial, examined, nsel, pruned)
    });
    ctx.checkpoint()?;

    let mut partials = Vec::with_capacity(results.len());
    let mut examined = vec![0u64; nconj];
    let mut nsel = 0u64;
    let (mut pruned_morsels, mut pruned_bytes) = (0u64, 0u64);
    for (p, ex, ns, pr) in results {
        partials.push(p);
        for (total, morsel) in examined.iter_mut().zip(ex) {
            *total += morsel;
        }
        nsel += ns;
        pruned_morsels += pr.0;
        pruned_bytes += pr.1;
    }
    prof.pruned_morsels += pruned_morsels;
    prof.pruned_bytes += pruned_bytes;

    let width = 32 * (group_by.len() + aggs.len()).max(1) as u64;
    let empty_states = || SlotAgg::empty_states(&pipe.kinds);
    let (first_rows, mut gstates) =
        match aggregate::merge_partials(partials, &empty_states, width, ctx) {
            Some(table) => table,
            // Budget too small for the merged table: rerun through the
            // materializing operators, whose aggregate Grace-partitions under
            // the same budget (deterministically) before erroring.
            None => {
                return materializing_tail(src, &filters, group_by, aggs, prof, cfg, tracer, ctx)
            }
        };
    let ngroups = if group_by.is_empty() { 1 } else { first_rows.len() };
    for st in &mut gstates {
        st.grow_to(ngroups);
    }

    if let Some(started) = stage_started {
        let mut pred = Span::leaf("predicates", format!("{nconj} conjuncts"));
        pred.rows_in = n as u64;
        pred.rows_out = nsel;
        tracer.attach(pred);
        let mut stage = Span::leaf("partials", "");
        stage.rows_in = nsel;
        stage.rows_out = ngroups as u64;
        stage.wall_ns = started.elapsed().as_nanos() as u64;
        stage.children = sink.into_spans();
        tracer.attach(stage);
    }

    // Charges, computed from globally summed per-morsel counts so they are
    // invariant to thread count and identical whichever worker ran what.
    // The headline difference from the materializing path: conjuncts and
    // expression programs read their base columns but *write nothing* — the
    // intermediate seq_write_bytes term collapses to just the output.
    for (k, conj) in pipe.conjuncts.iter().enumerate() {
        prof.cpu_ops += examined[k];
        prof.seq_read_bytes += examined[k] * conj.width_bytes();
    }
    for kp in &pipe.keys {
        prof.cpu_ops += nsel;
        prof.seq_read_bytes += nsel * kp.prog.width_bytes();
    }
    for prog in pipe.agg_progs.iter().flatten() {
        prof.cpu_ops += nsel;
        prof.seq_read_bytes += nsel * prog.width_bytes();
    }
    prof.cpu_ops += nsel * (1 + naggs as u64);
    prof.rand_accesses += nsel;
    prof.hash_bytes += ngroups as u64 * width;
    for kind in &pipe.kinds {
        if *kind == SlotAgg::CountDistinct {
            prof.rand_accesses += nsel;
        }
    }

    // Materialize the output: key columns gather the base relation at the
    // groups' first rows (or re-run the key program at just those rows),
    // aggregate columns come straight from the merged states.
    let mut out_fields: Vec<(String, Arc<Column>)> =
        Vec::with_capacity(group_by.len() + aggs.len());
    for (kp, (_, name)) in pipe.keys.iter().zip(group_by) {
        let col = match &kp.source {
            Some(c) => c.take(&first_rows),
            None => {
                let mut slots = Vec::new();
                kp.prog.eval_sel(&first_rows, &mut slots);
                kp.prog.column_from_slots(slots).expect("non-string checked at compile")
            }
        };
        out_fields.push((name.clone(), Arc::new(col)));
    }
    for (agg, st) in aggs.iter().zip(gstates) {
        out_fields.push((agg.name.clone(), Arc::new(st.finish()?)));
    }
    prof.seq_write_bytes += out_fields.iter().map(|(_, c)| c.stream_bytes() as u64).sum::<u64>();
    Ok((rows_in, Relation::new(out_fields)?))
}

/// The transparent fallback: run the peeled filters and the aggregate
/// through the materializing operators, in place, over the already-executed
/// source — reproducing `Executor::Materialize`'s results, errors, charges,
/// and governor behavior exactly. Each operator gets its own child span
/// inside the open `fused` span, plus a `fallback` marker leaf.
#[allow(clippy::too_many_arguments)]
fn materializing_tail(
    src: Relation,
    filters: &[&Expr],
    group_by: &[(Expr, String)],
    aggs: &[AggExpr],
    prof: &mut WorkProfile,
    cfg: &EngineConfig,
    tracer: &Tracer,
    ctx: &QueryContext,
) -> Result<(u64, Relation)> {
    let rows_in = src.num_rows() as u64;
    let traced = tracer.is_enabled();
    if traced {
        tracer.attach(Span::leaf("fallback", "materializing path"));
    }
    let mut rel = src;
    for f in filters {
        ctx.checkpoint()?;
        if traced {
            tracer.push("filter", &expr_sketch(f));
        }
        let before = *prof;
        let fin = rel.num_rows() as u64;
        let out = match filter::exec_filter(&rel, f, None, prof, cfg, tracer, ctx) {
            Ok(out) => out,
            Err(e) => {
                if traced {
                    tracer.pop(0, 0, Vec::new());
                }
                return Err(e);
            }
        };
        ctx.track(out.stream_bytes() as u64);
        prof.peak_bytes = prof.peak_bytes.max(ctx.high_water());
        if traced {
            tracer.pop(fin, out.num_rows() as u64, prof.delta_since(&before).counter_pairs());
        }
        rel = out;
    }
    ctx.checkpoint()?;
    if traced {
        tracer.push("aggregate", &format!("{} keys, {} aggs", group_by.len(), aggs.len()));
    }
    let before = *prof;
    let fin = rel.num_rows() as u64;
    match aggregate::exec_aggregate(&rel, group_by, aggs, prof, cfg, tracer, ctx) {
        Ok(out) => {
            if traced {
                tracer.pop(fin, out.num_rows() as u64, prof.delta_since(&before).counter_pairs());
            }
            // The enclosing exec_node wrapper tracks the output and ratchets
            // the peak, exactly as it would for a materializing Aggregate.
            Ok((rows_in, out))
        }
        Err(e) => {
            if traced {
                tracer.pop(0, 0, Vec::new());
            }
            Err(e)
        }
    }
}

/// Bytecode-compiled standalone filter, used for `Filter` nodes that are not
/// consumed by a fused aggregate (e.g. below a join). Candidates propagate
/// through recycled per-morsel selection vectors and the surviving rows are
/// gathered exactly once, instead of the materializing path's per-conjunct
/// mask columns and sub-relation gathers. Results are bit-identical; the
/// profile drops the intermediate write traffic. Falls back to the
/// materializing filter when any conjunct fails to compile.
pub(super) fn exec_filter_fused(
    rel: &Relation,
    predicate: &Expr,
    table: Option<&wimpi_storage::Table>,
    prof: &mut WorkProfile,
    cfg: &EngineConfig,
    tracer: &Tracer,
    ctx: &QueryContext,
) -> Result<Relation> {
    ensure_u32_indexable(rel.num_rows(), "filter")?;
    let mut parts = Vec::new();
    split_conjuncts(predicate.clone(), &mut parts);
    let mut conjuncts = Vec::new();
    let mut const_false = false;
    let compiled = parts.iter().try_for_each(|c| {
        match compile_conjunct(c, rel)? {
            Compiled::ConstTrue => {}
            Compiled::ConstFalse => const_false = true,
            Compiled::Pred(p) => conjuncts.push(p),
        }
        Some(())
    });
    if compiled.is_none() {
        if tracer.is_enabled() {
            tracer.attach(Span::leaf("fallback", "materializing path"));
        }
        return filter::exec_filter(rel, predicate, table, prof, cfg, tracer, ctx);
    }

    let pruner = if cfg.prune_scans && !conjuncts.is_empty() {
        table.and_then(|t| prune::ScanPruner::new(t, &conjuncts, rel.num_rows()))
    } else {
        None
    };

    let n = rel.num_rows();
    let nconj = conjuncts.len();
    let traced = tracer.is_enabled();
    let started = traced.then(Instant::now);
    let ranges = morsel_ranges(n, cfg.morsel_rows);
    let results = run_morsels(cfg, &ranges, |_, r| {
        let mut examined = vec![0u64; nconj];
        let mut pruned = (0u64, 0u64);
        let mut sel = selection::take_scratch();
        if ctx.interrupted() || const_false {
            return (sel, examined, pruned);
        }
        let verdicts = pruner.as_ref().map(|p| p.verdicts(&r));
        if verdicts.as_ref().is_some_and(|v| v.contains(&prune::Verdict::False)) {
            pruned = (1, r.len() as u64 * conjuncts[0].width_bytes());
            return (sel, examined, pruned);
        }
        let mut dense = true;
        for (k, conj) in conjuncts.iter().enumerate() {
            if verdicts.as_ref().is_some_and(|v| v[k] == prune::Verdict::True) {
                let rows = if dense { r.len() } else { sel.len() } as u64;
                pruned.1 += rows * conj.width_bytes();
                continue;
            }
            if dense {
                examined[k] = r.len() as u64;
                conj.filter_range(r.clone(), &mut sel);
                dense = false;
            } else {
                examined[k] = sel.len() as u64;
                if sel.is_empty() {
                    break;
                }
                let mut next = selection::take_scratch();
                conj.filter_sel(&sel, &mut next);
                selection::put_scratch(std::mem::replace(&mut sel, next));
            }
        }
        if dense {
            sel.extend(r.clone().map(|i| i as u32));
        }
        (sel, examined, pruned)
    });
    ctx.checkpoint()?;
    let mut sel: Vec<u32> = Vec::new();
    let mut examined = vec![0u64; nconj];
    for (morsel_sel, ex, pr) in results {
        sel.extend_from_slice(&morsel_sel);
        selection::put_scratch(morsel_sel);
        for (total, morsel) in examined.iter_mut().zip(ex) {
            *total += morsel;
        }
        prof.pruned_morsels += pr.0;
        prof.pruned_bytes += pr.1;
    }
    for (k, conj) in conjuncts.iter().enumerate() {
        prof.cpu_ops += examined[k];
        prof.seq_read_bytes += examined[k] * conj.width_bytes();
    }
    if traced {
        let mut pred = Span::leaf("predicates", format!("{nconj} conjuncts"));
        pred.rows_in = n as u64;
        pred.rows_out = sel.len() as u64;
        if let Some(started) = started {
            pred.wall_ns = started.elapsed().as_nanos() as u64;
        }
        tracer.attach(pred);
    }
    let out = rel.take(&sel);
    filter::charge_gather(rel, &out, sel.len(), prof);
    Ok(out)
}
