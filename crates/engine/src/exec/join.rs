//! Hash equi-joins: inner, semi, anti, and left outer — morsel-driven.
//!
//! The right input is the build side (query authors put the smaller relation
//! there, as the TPC-H plans in `wimpi-queries` do). Duplicate build keys are
//! handled with the classic head+next chain layout, avoiding per-key
//! allocations.
//!
//! Parallel runs partition the build by a deterministic key hash: each
//! partition owner scans all build keys and inserts only its own rows, in
//! global row order, so every chain is laid out exactly as the serial build
//! would lay it out (most-recent-first). The probe then walks left-side
//! morsels independently and the per-morsel selections are concatenated in
//! morsel order — the output row order is bit-identical to the serial join
//! at any thread count (see `exec::parallel`).

use std::collections::HashMap;
use std::hash::Hash;
use std::ops::Range;
use std::sync::Arc;

use super::parallel::{morsel_ranges, run_morsels, run_morsels_spanned, EngineConfig};
use super::{ensure_u32_indexable, key_values};
use crate::error::{EngineError, Result};
use crate::governor::QueryContext;
use crate::plan::JoinType;
use crate::relation::Relation;
use crate::stats::WorkProfile;
use wimpi_obs::{MorselSink, MorselSpan, Span, Tracer};
use wimpi_storage::{Column, DataType, DictBuilder};

/// Estimated bytes per build-side row per key in the hash table — the same
/// constant the work profile charges to `hash_bytes`, so the governor's
/// reservations and the cost model agree about what a build "weighs".
const BUILD_BYTES_PER_ROW_KEY: u64 = 16;

/// The Grace fallback stops doubling here; a build that cannot fit at 1024
/// partitions is declared `ResourceExhausted`.
pub(crate) const MAX_GRACE_PARTS: usize = 1024;

/// Synthetic column marking matched rows in a left outer join.
pub const MATCHED_COL: &str = "__matched";

const NONE_ROW: u32 = u32::MAX;

/// Executes a hash join.
#[allow(clippy::too_many_arguments)]
pub fn exec_join(
    left: &Relation,
    right: &Relation,
    on: &[(String, String)],
    join_type: JoinType,
    prof: &mut WorkProfile,
    cfg: &EngineConfig,
    tracer: &Tracer,
    ctx: &QueryContext,
) -> Result<Relation> {
    if on.is_empty() {
        return Err(EngineError::Plan("join requires at least one key".to_string()));
    }
    ensure_u32_indexable(left.num_rows(), "join (probe side)")?;
    ensure_u32_indexable(right.num_rows(), "join (build side)")?;
    for (l, r) in on {
        let lt = left.data_type(l)?;
        let rt = right.data_type(r)?;
        let joinable =
            |t: DataType| matches!(t, DataType::Int64 | DataType::Int32 | DataType::Date);
        if !joinable(lt) || !joinable(rt) {
            return Err(EngineError::Unsupported(format!(
                "join keys must be integer/date columns, got {l}: {lt} = {r}: {rt}"
            )));
        }
    }
    let lkeys: Vec<Vec<i64>> =
        on.iter().map(|(l, _)| key_values(left.column(l)?.as_ref())).collect::<Result<_>>()?;
    let rkeys: Vec<Vec<i64>> =
        on.iter().map(|(_, r)| key_values(right.column(r)?.as_ref())).collect::<Result<_>>()?;

    let probed = match on.len() {
        1 => probe(
            cfg,
            left.num_rows(),
            right.num_rows(),
            |i| lkeys[0][i],
            |i| rkeys[0][i],
            join_type,
            tracer,
            ctx,
            1,
        ),
        2 => probe(
            cfg,
            left.num_rows(),
            right.num_rows(),
            |i| (lkeys[0][i], lkeys[1][i]),
            |i| (rkeys[0][i], rkeys[1][i]),
            join_type,
            tracer,
            ctx,
            2,
        ),
        _ => probe(
            cfg,
            left.num_rows(),
            right.num_rows(),
            |i| lkeys.iter().map(|k| k[i]).collect::<Vec<_>>(),
            |i| rkeys.iter().map(|k| k[i]).collect::<Vec<_>>(),
            join_type,
            tracer,
            ctx,
            on.len(),
        ),
    };
    // Out-of-core rung (DESIGN.md §16): when even Grace could not fit the
    // largest partition, stage partition inputs on the spill disk and resume
    // the fan-out doubling. Only a budget failure escalates here — other
    // errors (cancellation, integrity) pass through untouched.
    let (lsel, rsel) = match probed {
        Err(EngineError::ResourceExhausted { .. }) if ctx.spill().is_some() => spill_probe(
            cfg,
            left.num_rows(),
            right.num_rows(),
            &lkeys,
            &rkeys,
            join_type,
            tracer,
            ctx,
            prof,
        )?,
        other => other?,
    };

    // Work: build inserts + probe lookups are random accesses; the build
    // table footprint informs the LLC model. Charged once from global row
    // counts, so parallel and serial runs record identical profiles.
    prof.rand_accesses += (left.num_rows() + right.num_rows()) as u64;
    prof.cpu_ops += 2 * (left.num_rows() + right.num_rows()) as u64;
    prof.hash_bytes += right.num_rows() as u64 * 16 * on.len() as u64;
    prof.seq_read_bytes += ((left.num_rows() + right.num_rows()) * 8 * on.len()) as u64;

    let out = match join_type {
        JoinType::Inner => {
            let mut fields = left.take(&lsel).fields().to_vec();
            let rtaken = right.take(&rsel);
            fields.extend(rtaken.fields().iter().cloned());
            Relation::new(fields)?
        }
        JoinType::Semi | JoinType::Anti => left.take(&lsel),
        JoinType::LeftOuter => {
            let mut fields = left.take(&lsel).fields().to_vec();
            for (name, c) in right.fields() {
                fields.push((name.clone(), Arc::new(take_optional(c, &rsel))));
            }
            fields.push((
                MATCHED_COL.to_string(),
                Arc::new(Column::Bool(rsel.iter().map(|&r| r != NONE_ROW).collect())),
            ));
            Relation::new(fields)?
        }
    };
    super::filter::charge_gather(left, &out, lsel.len(), prof);
    Ok(out)
}

use super::partition_of;

/// Appends the (left, right) output rows that left row `i` contributes given
/// its head-chain hit — the per-row core shared by the serial and parallel
/// probes.
#[inline]
fn emit_row(
    i: usize,
    hit: Option<u32>,
    next: &[u32],
    join_type: JoinType,
    lsel: &mut Vec<u32>,
    rsel: &mut Vec<u32>,
) {
    match join_type {
        JoinType::Inner => {
            let mut cur = hit;
            while let Some(r) = cur {
                lsel.push(i as u32);
                rsel.push(r);
                cur = (next[r as usize] != NONE_ROW).then(|| next[r as usize]);
            }
        }
        JoinType::Semi => {
            if hit.is_some() {
                lsel.push(i as u32);
            }
        }
        JoinType::Anti => {
            if hit.is_none() {
                lsel.push(i as u32);
            }
        }
        JoinType::LeftOuter => {
            let mut cur = hit;
            if cur.is_none() {
                lsel.push(i as u32);
                rsel.push(NONE_ROW);
            }
            while let Some(r) = cur {
                lsel.push(i as u32);
                rsel.push(r);
                cur = (next[r as usize] != NONE_ROW).then(|| next[r as usize]);
            }
        }
    }
}

/// Builds on the right, probes with the left. Returns selected row ids per
/// side; for semi/anti the right vector is empty; for left outer, unmatched
/// right slots hold `NONE_ROW`.
///
/// When tracing, `build` and `probe` phase spans are attached to the open
/// join span; the probe span gets per-morsel children over the same
/// `morsel_ranges(nleft, morsel_rows)` boundaries on both the serial and the
/// parallel path, so trace structure is identical at any thread count.
///
/// The whole build table is reserved against the query budget up front; when
/// it does not fit, [`grace_probe`] degrades to a partitioned build with the
/// same output and trace structure. Worker threads bail out at morsel
/// boundaries once cancellation is signalled (the partial result is
/// discarded — the final checkpoint turns it into `Cancelled`).
#[allow(clippy::too_many_arguments)]
fn probe<K: Hash + Eq + Send + Sync>(
    cfg: &EngineConfig,
    nleft: usize,
    nright: usize,
    lkey: impl Fn(usize) -> K + Sync,
    rkey: impl Fn(usize) -> K + Sync,
    join_type: JoinType,
    tracer: &Tracer,
    ctx: &QueryContext,
    nkeys: usize,
) -> Result<(Vec<u32>, Vec<u32>)> {
    let build_bytes = nright as u64 * BUILD_BYTES_PER_ROW_KEY * nkeys as u64;
    let Some(_guard) = ctx.try_reserve(build_bytes) else {
        return grace_probe(cfg, nleft, nright, lkey, rkey, join_type, tracer, ctx, nkeys);
    };
    let traced = tracer.is_enabled();
    let sink = tracer.morsel_sink();
    let build_started = traced.then(std::time::Instant::now);
    if cfg.threads <= 1 {
        // Serial fast path: one build map, one probe scan.
        // head: key -> most recent build row; next: chain through earlier rows.
        let mut head: HashMap<K, u32> = HashMap::with_capacity(nright * 2);
        let mut next: Vec<u32> = vec![NONE_ROW; nright];
        #[allow(clippy::needless_range_loop)] // `i` is the row id being chained
        for i in 0..nright {
            match head.entry(rkey(i)) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    next[i] = *e.get();
                    *e.get_mut() = i as u32;
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(i as u32);
                }
            }
        }
        let build_ns = elapsed_ns(&build_started);
        let probe_started = traced.then(std::time::Instant::now);
        let mut lsel = Vec::new();
        let mut rsel = Vec::new();
        if sink.is_enabled() {
            // Chunk the scan by morsel boundaries (pure bookkeeping — the
            // iteration order is unchanged) so the serial trace has the same
            // morsel children the parallel probe records.
            for (mi, r) in morsel_ranges(nleft, cfg.morsel_rows).into_iter().enumerate() {
                if ctx.interrupted() {
                    break;
                }
                let rows = r.len() as u64;
                let m0 = std::time::Instant::now();
                for i in r {
                    emit_row(
                        i,
                        head.get(&lkey(i)).copied(),
                        &next,
                        join_type,
                        &mut lsel,
                        &mut rsel,
                    );
                }
                sink.record(MorselSpan {
                    index: mi,
                    rows,
                    worker: 0,
                    wall_ns: m0.elapsed().as_nanos() as u64,
                });
            }
        } else {
            for r in morsel_ranges(nleft, cfg.morsel_rows) {
                if ctx.interrupted() {
                    break;
                }
                for i in r {
                    emit_row(
                        i,
                        head.get(&lkey(i)).copied(),
                        &next,
                        join_type,
                        &mut lsel,
                        &mut rsel,
                    );
                }
            }
        }
        ctx.checkpoint()?;
        attach_phases(tracer, nright, build_ns, nleft, &lsel, &probe_started, sink);
        return Ok((lsel, rsel));
    }

    // Partitioned parallel build: partition owner `p` scans every build key
    // and inserts only the rows hashing to `p`, in global row order — all
    // rows of one key share a partition, so each chain is laid out exactly
    // as the serial build lays it out. (No morsel spans here: the partition
    // count follows the thread count, so per-partition children would break
    // trace-structure determinism.)
    let nparts = cfg.threads;
    let part_ranges: Vec<Range<usize>> = (0..nparts).map(|p| p..p + 1).collect();
    let built = run_morsels(cfg, &part_ranges, |p, _| {
        let mut head: HashMap<K, u32> = HashMap::new();
        let mut edges: Vec<(u32, u32)> = Vec::new();
        if ctx.interrupted() {
            return (head, edges);
        }
        for i in 0..nright {
            let k = rkey(i);
            if partition_of(&k, nparts) != p {
                continue;
            }
            match head.entry(k) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    edges.push((i as u32, *e.get()));
                    *e.get_mut() = i as u32;
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(i as u32);
                }
            }
        }
        (head, edges)
    });
    let mut next: Vec<u32> = vec![NONE_ROW; nright];
    let mut heads: Vec<HashMap<K, u32>> = Vec::with_capacity(nparts);
    for (head, edges) in built {
        for (row, prev) in edges {
            next[row as usize] = prev;
        }
        heads.push(head);
    }
    let build_ns = elapsed_ns(&build_started);
    let probe_started = traced.then(std::time::Instant::now);

    // Morsel-parallel probe; per-morsel selections concatenate in morsel
    // order, reproducing the serial output order.
    let probe_ranges = morsel_ranges(nleft, cfg.morsel_rows);
    let parts = run_morsels_spanned(cfg, &probe_ranges, &sink, |_, r| {
        let mut lsel = Vec::new();
        let mut rsel = Vec::new();
        if ctx.interrupted() {
            return (lsel, rsel);
        }
        for i in r {
            let k = lkey(i);
            let hit = heads[partition_of(&k, nparts)].get(&k).copied();
            emit_row(i, hit, &next, join_type, &mut lsel, &mut rsel);
        }
        (lsel, rsel)
    });
    let mut lsel = Vec::new();
    let mut rsel = Vec::new();
    for (l, r) in parts {
        lsel.extend(l);
        rsel.extend(r);
    }
    ctx.checkpoint()?;
    attach_phases(tracer, nright, build_ns, nleft, &lsel, &probe_started, sink);
    Ok((lsel, rsel))
}

/// The Grace-style degraded build: partition the build keys by their
/// deterministic hash, process partitions *sequentially* (one partition's
/// hash table lives at a time), then splice the per-partition outputs back
/// into global left-row order.
///
/// Determinism argument: all rows of one key hash to one partition, and each
/// partition inserts its build rows in ascending global row order — so every
/// chain is laid out exactly as the serial build lays it out, and each left
/// row's matches are emitted in the same order the serial probe emits them.
/// The merge then visits left rows 0..nleft in order, which reproduces the
/// serial output byte for byte. Partition choice depends only on row counts
/// and the budget, never on the thread count.
#[allow(clippy::too_many_arguments)]
fn grace_probe<K: Hash + Eq + Send + Sync>(
    cfg: &EngineConfig,
    nleft: usize,
    nright: usize,
    lkey: impl Fn(usize) -> K + Sync,
    rkey: impl Fn(usize) -> K + Sync,
    join_type: JoinType,
    tracer: &Tracer,
    ctx: &QueryContext,
    nkeys: usize,
) -> Result<(Vec<u32>, Vec<u32>)> {
    let traced = tracer.is_enabled();
    let sink = tracer.morsel_sink();
    let build_started = traced.then(std::time::Instant::now);
    // Linear bookkeeping (partition lists, the shared chain array — 4 B/row
    // each side, ×2) is *measured* but not capped: like selection vectors
    // and materialized outputs it streams sequentially, and only the
    // random-access hash table is what thrashes a wimpy node (the same line
    // the cluster's MemoryModel draws around `hash_bytes`).
    ctx.track((nleft + nright) as u64 * 8);

    // Double the fan-out until the *largest* partition's build table fits.
    let mut nparts = 2usize;
    let counts = loop {
        let mut counts = vec![0u32; nparts];
        for i in 0..nright {
            counts[partition_of(&rkey(i), nparts)] += 1;
        }
        let maxcount = counts.iter().copied().max().unwrap_or(0) as u64;
        let need = maxcount * BUILD_BYTES_PER_ROW_KEY * nkeys as u64;
        if let Some(probe_fit) = ctx.try_reserve(need) {
            drop(probe_fit);
            break counts;
        }
        if nparts >= MAX_GRACE_PARTS {
            return Err(EngineError::ResourceExhausted {
                requested: need,
                budget: ctx.budget(),
                operator: "join build".to_string(),
            });
        }
        nparts *= 2;
    };
    ctx.note_fallback(nparts as u32);

    // Partition both sides (ascending row order within each partition).
    let mut rrows: Vec<Vec<u32>> = counts.iter().map(|&c| Vec::with_capacity(c as usize)).collect();
    for i in 0..nright {
        rrows[partition_of(&rkey(i), nparts)].push(i as u32);
    }
    let mut lpart: Vec<u32> = Vec::with_capacity(nleft);
    let mut lrows: Vec<Vec<u32>> = vec![Vec::new(); nparts];
    for i in 0..nleft {
        let p = partition_of(&lkey(i), nparts);
        lpart.push(p as u32);
        lrows[p].push(i as u32);
    }
    let build_ns = elapsed_ns(&build_started);
    let probe_started = traced.then(std::time::Instant::now);

    // One partition at a time: build, probe, drop.
    let mut next: Vec<u32> = vec![NONE_ROW; nright];
    let mut part_sels: Vec<(Vec<u32>, Vec<u32>)> = Vec::with_capacity(nparts);
    for p in 0..nparts {
        ctx.checkpoint()?;
        let _table =
            ctx.reserve(counts[p] as u64 * BUILD_BYTES_PER_ROW_KEY * nkeys as u64, "join build")?;
        let mut head: HashMap<K, u32> = HashMap::with_capacity(counts[p] as usize * 2);
        for &i in &rrows[p] {
            match head.entry(rkey(i as usize)) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    next[i as usize] = *e.get();
                    *e.get_mut() = i;
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(i);
                }
            }
        }
        let mut lsel = Vec::new();
        let mut rsel = Vec::new();
        for &i in &lrows[p] {
            let hit = head.get(&lkey(i as usize)).copied();
            emit_row(i as usize, hit, &next, join_type, &mut lsel, &mut rsel);
        }
        part_sels.push((lsel, rsel));
    }

    // Splice back to global left-row order (per-partition outputs are
    // already ascending in the left row id).
    let mut cursors = vec![0usize; nparts];
    let mut lsel = Vec::new();
    let mut rsel = Vec::new();
    for (i, &p) in lpart.iter().enumerate() {
        let p = p as usize;
        let (pl, pr) = &part_sels[p];
        let c = &mut cursors[p];
        while *c < pl.len() && pl[*c] == i as u32 {
            lsel.push(i as u32);
            if !pr.is_empty() {
                rsel.push(pr[*c]);
            }
            *c += 1;
        }
    }

    // Identical trace structure to the resident-build paths: the probe span
    // carries one child per left morsel (synthetic here — the fallback
    // probes by partition, but the *structure* must not leak the budget).
    if sink.is_enabled() {
        for (mi, r) in morsel_ranges(nleft, cfg.morsel_rows).into_iter().enumerate() {
            sink.record(MorselSpan { index: mi, rows: r.len() as u64, worker: 0, wall_ns: 0 });
        }
    }
    attach_phases(tracer, nright, build_ns, nleft, &lsel, &probe_started, sink);
    Ok((lsel, rsel))
}

/// The spill rung past Grace: resume the fan-out doubling beyond
/// `MAX_GRACE_PARTS`, but stage both sides' partition inputs — `(row id,
/// key slots)` records — on the spill disk instead of holding partition
/// lists for a resident re-scan. Partitions are then read back (checksum-
/// verified, fault-retried) and processed one at a time exactly like
/// [`grace_probe`]: build in ascending row order, probe in ascending row
/// order, splice per-partition outputs back via the left partition map.
/// The determinism argument is Grace's verbatim — partition choice depends
/// only on row counts and the budget, chains are laid out in serial order,
/// and the splice restores global left-row order — so the output is
/// bit-exact vs. the in-memory join at any thread count.
///
/// Keys are hashed as [`Key`] values (the aggregate's spill rung shares the
/// codec); a hot key that still does not fit at `MAX_SPILL_PARTS` re-raises
/// the typed `ResourceExhausted`, and a full disk raises the same error
/// with the spill-disk marker in its operator.
#[allow(clippy::too_many_arguments)]
fn spill_probe(
    cfg: &EngineConfig,
    nleft: usize,
    nright: usize,
    lkeys: &[Vec<i64>],
    rkeys: &[Vec<i64>],
    join_type: JoinType,
    tracer: &Tracer,
    ctx: &QueryContext,
    prof: &mut WorkProfile,
) -> Result<(Vec<u32>, Vec<u32>)> {
    use super::aggregate::Key;
    use super::spill::{
        encode_spill_row, note_spill_delta, spill_row_bytes, SpillRowReader, SpillSet,
        MAX_SPILL_PARTS,
    };

    let nkeys = lkeys.len();
    let disk = Arc::clone(ctx.spill().expect("spill_probe requires a disk"));
    let before = disk.counters();
    let result = (|| {
        let traced = tracer.is_enabled();
        let sink = tracer.morsel_sink();
        let build_started = traced.then(std::time::Instant::now);
        ctx.track((nleft + nright) as u64 * 8);

        // Resume the doubling where Grace stopped, still requiring only the
        // largest partition's hash table to fit.
        let mut nparts = MAX_GRACE_PARTS * 2;
        let counts = loop {
            let mut counts = vec![0u32; nparts];
            for i in 0..nright {
                counts[partition_of(&Key::from_slots(rkeys, i), nparts)] += 1;
            }
            let maxcount = counts.iter().copied().max().unwrap_or(0) as u64;
            let need = maxcount * BUILD_BYTES_PER_ROW_KEY * nkeys as u64;
            if let Some(fit) = ctx.try_reserve(need) {
                drop(fit);
                break counts;
            }
            if nparts >= MAX_SPILL_PARTS {
                return Err(EngineError::ResourceExhausted {
                    requested: need,
                    budget: ctx.budget(),
                    operator: "join build".to_string(),
                });
            }
            nparts *= 2;
        };
        ctx.note_fallback(nparts as u32);

        // Stage both sides partition-by-partition, rows in ascending global
        // row order. The staging buffers are transient sequential writes
        // (tracked, not capped); `SpillSet` frees every chunk on any exit.
        let mut set = SpillSet::new(ctx, "join build").expect("disk attached");
        let mut bufs: Vec<Vec<u8>> = vec![Vec::new(); nparts];
        for i in 0..nright {
            let p = partition_of(&Key::from_slots(rkeys, i), nparts);
            encode_spill_row(&mut bufs[p], i as u32, rkeys, i);
        }
        ctx.track((nright * spill_row_bytes(nkeys)) as u64);
        let mut rchunks: Vec<Option<usize>> = vec![None; nparts];
        for (p, buf) in bufs.iter_mut().enumerate() {
            if !buf.is_empty() {
                rchunks[p] = Some(set.write(buf)?);
                *buf = Vec::new();
            }
        }
        let mut lpart: Vec<u32> = Vec::with_capacity(nleft);
        for i in 0..nleft {
            let p = partition_of(&Key::from_slots(lkeys, i), nparts);
            lpart.push(p as u32);
            encode_spill_row(&mut bufs[p], i as u32, lkeys, i);
        }
        ctx.track((nleft * spill_row_bytes(nkeys)) as u64);
        let mut lchunks: Vec<Option<usize>> = vec![None; nparts];
        for (p, buf) in bufs.iter_mut().enumerate() {
            if !buf.is_empty() {
                lchunks[p] = Some(set.write(buf)?);
                *buf = Vec::new();
            }
        }
        drop(bufs);
        let build_ns = elapsed_ns(&build_started);
        let probe_started = traced.then(std::time::Instant::now);

        // One partition at a time: read back, build, probe, drop.
        let mut next: Vec<u32> = vec![NONE_ROW; nright];
        let mut part_sels: Vec<(Vec<u32>, Vec<u32>)> = Vec::with_capacity(nparts);
        for p in 0..nparts {
            ctx.checkpoint()?;
            let _table = ctx
                .reserve(counts[p] as u64 * BUILD_BYTES_PER_ROW_KEY * nkeys as u64, "join build")?;
            let mut head: HashMap<Key, u32> = HashMap::with_capacity(counts[p] as usize * 2);
            if let Some(ci) = rchunks[p] {
                let bytes = set.read(ci)?;
                let mut rd = SpillRowReader::new(&bytes, nkeys);
                while let Some((row, slots)) = rd.next() {
                    match head.entry(Key::from_row(slots)) {
                        std::collections::hash_map::Entry::Occupied(mut e) => {
                            next[row as usize] = *e.get();
                            *e.get_mut() = row;
                        }
                        std::collections::hash_map::Entry::Vacant(e) => {
                            e.insert(row);
                        }
                    }
                }
            }
            let mut lsel = Vec::new();
            let mut rsel = Vec::new();
            if let Some(ci) = lchunks[p] {
                let bytes = set.read(ci)?;
                let mut rd = SpillRowReader::new(&bytes, nkeys);
                while let Some((row, slots)) = rd.next() {
                    let hit = head.get(&Key::from_row(slots)).copied();
                    emit_row(row as usize, hit, &next, join_type, &mut lsel, &mut rsel);
                }
            }
            part_sels.push((lsel, rsel));
        }

        // Splice back to global left-row order (as in the Grace rung).
        let mut cursors = vec![0usize; nparts];
        let mut lsel = Vec::new();
        let mut rsel = Vec::new();
        for (i, &p) in lpart.iter().enumerate() {
            let p = p as usize;
            let (pl, pr) = &part_sels[p];
            let c = &mut cursors[p];
            while *c < pl.len() && pl[*c] == i as u32 {
                lsel.push(i as u32);
                if !pr.is_empty() {
                    rsel.push(pr[*c]);
                }
                *c += 1;
            }
        }

        // Budget-invariant trace structure, as in the other paths.
        if sink.is_enabled() {
            for (mi, r) in morsel_ranges(nleft, cfg.morsel_rows).into_iter().enumerate() {
                sink.record(MorselSpan { index: mi, rows: r.len() as u64, worker: 0, wall_ns: 0 });
            }
        }
        attach_phases(tracer, nright, build_ns, nleft, &lsel, &probe_started, sink);
        Ok((lsel, rsel))
    })();
    // The ledger reflects spill traffic even when the rung ultimately
    // escalates (DiskFull bytes were still written and priced).
    note_spill_delta(prof, disk.counters().delta_since(&before));
    result
}

#[inline]
fn elapsed_ns(started: &Option<std::time::Instant>) -> u64 {
    started.map(|t| t.elapsed().as_nanos() as u64).unwrap_or(0)
}

/// Attaches `build` and `probe` phase spans (with the probe's morsel
/// children) to the open join span. No-op when the tracer is disabled.
fn attach_phases(
    tracer: &Tracer,
    nright: usize,
    build_ns: u64,
    nleft: usize,
    lsel: &[u32],
    probe_started: &Option<std::time::Instant>,
    sink: MorselSink,
) {
    if !tracer.is_enabled() {
        return;
    }
    let mut build = Span::leaf("build", "");
    build.rows_in = nright as u64;
    build.rows_out = nright as u64;
    build.wall_ns = build_ns;
    let mut probe = Span::leaf("probe", "");
    probe.rows_in = nleft as u64;
    probe.rows_out = lsel.len() as u64;
    probe.wall_ns = elapsed_ns(probe_started);
    probe.children = sink.into_spans();
    tracer.attach(build);
    tracer.attach(probe);
}

/// Gathers rows, substituting a type default where the index is `NONE_ROW`.
fn take_optional(col: &Column, sel: &[u32]) -> Column {
    match col {
        Column::Int64(v) => Column::Int64(
            sel.iter().map(|&i| if i == NONE_ROW { 0 } else { v[i as usize] }).collect(),
        ),
        Column::Int32(v) => Column::Int32(
            sel.iter().map(|&i| if i == NONE_ROW { 0 } else { v[i as usize] }).collect(),
        ),
        Column::Float64(v) => Column::Float64(
            sel.iter().map(|&i| if i == NONE_ROW { 0.0 } else { v[i as usize] }).collect(),
        ),
        Column::Decimal(v, s) => Column::Decimal(
            sel.iter().map(|&i| if i == NONE_ROW { 0 } else { v[i as usize] }).collect(),
            *s,
        ),
        Column::Date(v) => Column::Date(
            sel.iter().map(|&i| if i == NONE_ROW { 0 } else { v[i as usize] }).collect(),
        ),
        Column::Bool(v) => {
            Column::Bool(sel.iter().map(|&i| i != NONE_ROW && v[i as usize]).collect())
        }
        Column::Str(d) => {
            let mut b = DictBuilder::with_capacity(sel.len());
            for &i in sel {
                b.push(if i == NONE_ROW { "" } else { d.get(i as usize) });
            }
            Column::Str(b.finish())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(pairs: Vec<(&str, Vec<i64>)>) -> Relation {
        Relation::new(
            pairs.into_iter().map(|(n, v)| (n.to_string(), Arc::new(Column::Int64(v)))).collect(),
        )
        .unwrap()
    }

    fn run(l: &Relation, r: &Relation, on: Vec<(&str, &str)>, jt: JoinType) -> Relation {
        let on: Vec<(String, String)> =
            on.into_iter().map(|(a, b)| (a.to_string(), b.to_string())).collect();
        let mut p = WorkProfile::new();
        let ctx = QueryContext::default();
        exec_join(l, r, &on, jt, &mut p, &EngineConfig::serial(), Tracer::off(), &ctx).unwrap()
    }

    #[test]
    fn inner_join_matches_keys() {
        let l = rel(vec![("lk", vec![1, 2, 3, 2]), ("lv", vec![10, 20, 30, 40])]);
        let r = rel(vec![("rk", vec![2, 4]), ("rv", vec![200, 400])]);
        let out = run(&l, &r, vec![("lk", "rk")], JoinType::Inner);
        assert_eq!(out.num_rows(), 2);
        assert_eq!(out.column("lv").unwrap().as_i64().unwrap(), &[20, 40]);
        assert_eq!(out.column("rv").unwrap().as_i64().unwrap(), &[200, 200]);
    }

    #[test]
    fn inner_join_expands_duplicates() {
        let l = rel(vec![("lk", vec![1])]);
        let r = rel(vec![("rk", vec![1, 1, 1])]);
        let out = run(&l, &r, vec![("lk", "rk")], JoinType::Inner);
        assert_eq!(out.num_rows(), 3);
    }

    #[test]
    fn semi_and_anti_partition_left() {
        let l = rel(vec![("lk", vec![1, 2, 3])]);
        let r = rel(vec![("rk", vec![2, 2])]);
        let semi = run(&l, &r, vec![("lk", "rk")], JoinType::Semi);
        assert_eq!(semi.column("lk").unwrap().as_i64().unwrap(), &[2]);
        let anti = run(&l, &r, vec![("lk", "rk")], JoinType::Anti);
        assert_eq!(anti.column("lk").unwrap().as_i64().unwrap(), &[1, 3]);
        assert_eq!(semi.num_rows() + anti.num_rows(), l.num_rows());
    }

    #[test]
    fn left_outer_marks_matches() {
        let l = rel(vec![("lk", vec![1, 2])]);
        let r = rel(vec![("rk", vec![2]), ("rv", vec![99])]);
        let out = run(&l, &r, vec![("lk", "rk")], JoinType::LeftOuter);
        assert_eq!(out.num_rows(), 2);
        assert_eq!(out.column(MATCHED_COL).unwrap().as_bool().unwrap(), &[false, true]);
        assert_eq!(out.column("rv").unwrap().as_i64().unwrap(), &[0, 99]);
    }

    #[test]
    fn two_key_join() {
        let l = rel(vec![("a", vec![1, 1, 2]), ("b", vec![10, 20, 10])]);
        let r = rel(vec![("c", vec![1, 2]), ("d", vec![20, 10]), ("rv", vec![7, 8])]);
        let out = run(&l, &r, vec![("a", "c"), ("b", "d")], JoinType::Inner);
        assert_eq!(out.num_rows(), 2);
        assert_eq!(out.column("rv").unwrap().as_i64().unwrap(), &[7, 8]);
    }

    #[test]
    fn string_keys_rejected() {
        let l =
            Relation::new(vec![("s".into(), Arc::new(Column::Str(["a"].into_iter().collect())))])
                .unwrap();
        let r = rel(vec![("rk", vec![1])]);
        let mut p = WorkProfile::new();
        let err = exec_join(
            &l,
            &r,
            &[("s".to_string(), "rk".to_string())],
            JoinType::Inner,
            &mut p,
            &EngineConfig::serial(),
            Tracer::off(),
            &QueryContext::default(),
        );
        assert!(matches!(err, Err(EngineError::Unsupported(_))));
    }

    #[test]
    fn parallel_join_matches_serial_exactly() {
        // Duplicate keys on both sides so chain layout and duplicate
        // expansion order are exercised; tiny morsels force multi-morsel
        // probes. All join types must be bit-identical to serial.
        let n = 200i64;
        let l = rel(vec![("lk", (0..n).map(|i| i % 17).collect()), ("lv", (0..n).collect())]);
        let r = rel(vec![
            ("rk", (0..60).map(|i| i % 23).collect()),
            ("rv", (0..60).map(|i| i * 3).collect()),
        ]);
        for jt in [JoinType::Inner, JoinType::Semi, JoinType::Anti, JoinType::LeftOuter] {
            let on = [("lk".to_string(), "rk".to_string())];
            let mut sp = WorkProfile::new();
            let ctx = QueryContext::default();
            let serial =
                exec_join(&l, &r, &on, jt, &mut sp, &EngineConfig::serial(), Tracer::off(), &ctx)
                    .unwrap();
            for threads in [2, 4] {
                let cfg = EngineConfig::with_threads(threads).with_morsel_rows(13);
                let mut pp = WorkProfile::new();
                let ctx = QueryContext::default();
                let par = exec_join(&l, &r, &on, jt, &mut pp, &cfg, Tracer::off(), &ctx).unwrap();
                assert_eq!(par, serial, "{jt:?} diverged at {threads} threads");
                assert_eq!(pp, sp, "{jt:?} profile diverged at {threads} threads");
            }
        }
    }

    #[test]
    fn grace_fallback_is_bit_exact_and_budget_bounded() {
        // Duplicate keys exercise the chain layout the determinism argument
        // leans on. 60 build rows × 16 B/key = 960 B resident build; a
        // budget well under that forces the Grace path at every thread count.
        let n = 200i64;
        let l = rel(vec![("lk", (0..n).map(|i| i % 17).collect()), ("lv", (0..n).collect())]);
        let r = rel(vec![
            ("rk", (0..60).map(|i| i % 23).collect()),
            ("rv", (0..60).map(|i| i * 3).collect()),
        ]);
        for jt in [JoinType::Inner, JoinType::Semi, JoinType::Anti, JoinType::LeftOuter] {
            let on = [("lk".to_string(), "rk".to_string())];
            let mut sp = WorkProfile::new();
            let unbounded = QueryContext::default();
            let want = exec_join(
                &l,
                &r,
                &on,
                jt,
                &mut sp,
                &EngineConfig::serial(),
                Tracer::off(),
                &unbounded,
            )
            .unwrap();
            for threads in [1, 2, 4] {
                let cfg = EngineConfig::with_threads(threads).with_morsel_rows(13);
                let ctx = QueryContext::with_budget(500);
                let mut p = WorkProfile::new();
                let got = exec_join(&l, &r, &on, jt, &mut p, &cfg, Tracer::off(), &ctx).unwrap();
                assert_eq!(got, want, "{jt:?} grace diverged at {threads} threads");
                assert!(ctx.fallbacks() > 0, "{jt:?}: budget must engage the fallback");
                assert_eq!(ctx.mem.used(), 0, "{jt:?}: all reservations released");
            }
        }
        // A budget below one key's chain (keys repeat 3×: 48 B minimum even
        // at max fan-out) errors, typed.
        let ctx = QueryContext::with_budget(40);
        let mut p = WorkProfile::new();
        let err = exec_join(
            &l,
            &r,
            &[("lk".to_string(), "rk".to_string())],
            JoinType::Inner,
            &mut p,
            &EngineConfig::serial(),
            Tracer::off(),
            &ctx,
        )
        .unwrap_err();
        assert!(
            matches!(err, EngineError::ResourceExhausted { ref operator, .. } if operator == "join build"),
            "got {err:?}"
        );
        assert_eq!(ctx.mem.used(), 0, "failed join released everything");
    }

    fn spill_disk(cfg: wimpi_storage::SpillConfig) -> Arc<wimpi_storage::SpillDisk> {
        Arc::new(wimpi_storage::SpillDisk::new(cfg))
    }

    /// A join whose build is too large for Grace's 1024-partition cap under
    /// the budget, but fits once the spill rung keeps doubling: 20 000
    /// distinct build keys at a budget of ~8 table rows needs several
    /// thousand partitions.
    fn spill_join_inputs() -> (Relation, Relation) {
        let l = rel(vec![("lk", (0..2_000i64).map(|i| (i * 7) % 20_000).collect())]);
        let r = rel(vec![
            ("rk", (0..20_000i64).collect()),
            ("rv", (0..20_000i64).map(|i| i * 3).collect()),
        ]);
        (l, r)
    }

    #[test]
    fn spill_rung_is_bit_exact_past_grace() {
        let (l, r) = spill_join_inputs();
        let on = [("lk".to_string(), "rk".to_string())];
        for jt in [JoinType::Inner, JoinType::Semi, JoinType::Anti, JoinType::LeftOuter] {
            let mut sp = WorkProfile::new();
            let want = exec_join(
                &l,
                &r,
                &on,
                jt,
                &mut sp,
                &EngineConfig::serial(),
                Tracer::off(),
                &QueryContext::default(),
            )
            .unwrap();
            for threads in [1, 2, 4] {
                let cfg = EngineConfig::with_threads(threads).with_morsel_rows(257);
                let disk = spill_disk(wimpi_storage::SpillConfig::with_capacity(4 << 20));
                let ctx = QueryContext::with_budget(128).with_spill(Arc::clone(&disk));
                let mut p = WorkProfile::new();
                let got = exec_join(&l, &r, &on, jt, &mut p, &cfg, Tracer::off(), &ctx).unwrap();
                assert_eq!(got, want, "{jt:?} spill diverged at {threads} threads");
                assert!(p.spilled_bytes > 0, "{jt:?}: the spill rung must engage");
                assert!(
                    ctx.max_fallback_parts() > MAX_GRACE_PARTS as u32,
                    "{jt:?}: fan-out must pass the Grace cap"
                );
                assert_eq!(disk.used(), 0, "{jt:?}: all spill chunks freed");
                assert_eq!(ctx.mem.used(), 0, "{jt:?}: all reservations released");
            }
        }
    }

    #[test]
    fn spill_rung_survives_injected_faults_bit_exactly() {
        use wimpi_storage::SpillFaults;
        let (l, r) = spill_join_inputs();
        let on = [("lk".to_string(), "rk".to_string())];
        let mut sp = WorkProfile::new();
        let want = exec_join(
            &l,
            &r,
            &on,
            JoinType::Inner,
            &mut sp,
            &EngineConfig::serial(),
            Tracer::off(),
            &QueryContext::default(),
        )
        .unwrap();
        // 1-in-8 per fault kind: thousands of partition chunks guarantee
        // many injected corruptions, while 16 retries make an exhausted
        // chunk (p ≈ 0.23¹⁷ per chunk) impossible in practice.
        let cfg = wimpi_storage::SpillConfig::with_capacity(4 << 20)
            .with_faults(SpillFaults::every(42, 8))
            .with_max_read_retries(16);
        let disk = spill_disk(cfg);
        let ctx = QueryContext::with_budget(128).with_spill(Arc::clone(&disk));
        let mut p = WorkProfile::new();
        let got = exec_join(
            &l,
            &r,
            &on,
            JoinType::Inner,
            &mut p,
            &EngineConfig::serial(),
            Tracer::off(),
            &ctx,
        )
        .unwrap();
        assert_eq!(got, want, "faulted spill run must stay bit-exact");
        assert!(p.spill_corruptions_detected > 0, "fault injection must fire");
        assert_eq!(
            p.spill_read_retries, p.spill_corruptions_detected,
            "every detection forced one verified retry"
        );
        assert_eq!(disk.used(), 0);
    }

    #[test]
    fn spill_rung_escalates_on_disk_full_and_frees_chunks() {
        let (l, r) = spill_join_inputs();
        let disk = spill_disk(wimpi_storage::SpillConfig::with_capacity(1024));
        let ctx = QueryContext::with_budget(128).with_spill(Arc::clone(&disk));
        let mut p = WorkProfile::new();
        let err = exec_join(
            &l,
            &r,
            &[("lk".to_string(), "rk".to_string())],
            JoinType::Inner,
            &mut p,
            &EngineConfig::serial(),
            Tracer::off(),
            &ctx,
        )
        .unwrap_err();
        assert!(
            matches!(err, EngineError::ResourceExhausted { ref operator, .. }
                if operator.contains("spill disk full")),
            "got {err:?}"
        );
        assert!(p.spilled_bytes > 0, "partial spill traffic stays on the ledger");
        assert_eq!(disk.used(), 0, "failed spill freed its chunks");
        assert_eq!(ctx.mem.used(), 0);
    }

    #[test]
    fn spill_rung_escalates_persistent_corruption_to_integrity() {
        use wimpi_storage::SpillFaults;
        let (l, r) = spill_join_inputs();
        let cfg = wimpi_storage::SpillConfig::with_capacity(4 << 20)
            .with_faults(SpillFaults { seed: 9, torn_every: 0, corrupt_every: 1, slow_every: 0 })
            .with_max_read_retries(2);
        let disk = spill_disk(cfg);
        let ctx = QueryContext::with_budget(128).with_spill(Arc::clone(&disk));
        let mut p = WorkProfile::new();
        let err = exec_join(
            &l,
            &r,
            &[("lk".to_string(), "rk".to_string())],
            JoinType::Inner,
            &mut p,
            &EngineConfig::serial(),
            Tracer::off(),
            &ctx,
        )
        .unwrap_err();
        assert!(
            matches!(err, EngineError::Integrity { ref table, .. } if table == "__spill"),
            "got {err:?}"
        );
        assert_eq!(disk.used(), 0, "escalation still freed the chunks");
    }

    #[test]
    fn impossible_budget_still_errors_with_a_spill_disk() {
        // Keys repeat 3×, so even MAX_SPILL_PARTS cannot shrink a partition
        // below one 48 B chain — the typed error must survive the disk.
        let n = 200i64;
        let l = rel(vec![("lk", (0..n).map(|i| i % 17).collect())]);
        let r = rel(vec![("rk", (0..60).map(|i| i % 23).collect())]);
        let disk = spill_disk(wimpi_storage::SpillConfig::with_capacity(4 << 20));
        let ctx = QueryContext::with_budget(40).with_spill(Arc::clone(&disk));
        let mut p = WorkProfile::new();
        let err = exec_join(
            &l,
            &r,
            &[("lk".to_string(), "rk".to_string())],
            JoinType::Inner,
            &mut p,
            &EngineConfig::serial(),
            Tracer::off(),
            &ctx,
        )
        .unwrap_err();
        assert!(
            matches!(err, EngineError::ResourceExhausted { ref operator, .. } if operator == "join build"),
            "got {err:?}"
        );
        assert_eq!(disk.used(), 0);
    }
}
