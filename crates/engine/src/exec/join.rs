//! Hash equi-joins: inner, semi, anti, and left outer.
//!
//! The right input is the build side (query authors put the smaller relation
//! there, as the TPC-H plans in `wimpi-queries` do). Duplicate build keys are
//! handled with the classic head+next chain layout, avoiding per-key
//! allocations.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::Arc;

use super::key_values;
use crate::error::{EngineError, Result};
use crate::plan::JoinType;
use crate::relation::Relation;
use crate::stats::WorkProfile;
use wimpi_storage::{Column, DataType, DictBuilder};

/// Synthetic column marking matched rows in a left outer join.
pub const MATCHED_COL: &str = "__matched";

const NONE_ROW: u32 = u32::MAX;

/// Executes a hash join.
pub fn exec_join(
    left: &Relation,
    right: &Relation,
    on: &[(String, String)],
    join_type: JoinType,
    prof: &mut WorkProfile,
) -> Result<Relation> {
    if on.is_empty() {
        return Err(EngineError::Plan("join requires at least one key".to_string()));
    }
    for (l, r) in on {
        let lt = left.data_type(l)?;
        let rt = right.data_type(r)?;
        let joinable =
            |t: DataType| matches!(t, DataType::Int64 | DataType::Int32 | DataType::Date);
        if !joinable(lt) || !joinable(rt) {
            return Err(EngineError::Unsupported(format!(
                "join keys must be integer/date columns, got {l}: {lt} = {r}: {rt}"
            )));
        }
    }
    let lkeys: Vec<Vec<i64>> =
        on.iter().map(|(l, _)| key_values(left.column(l)?)).collect::<Result<_>>()?;
    let rkeys: Vec<Vec<i64>> =
        on.iter().map(|(_, r)| key_values(right.column(r)?)).collect::<Result<_>>()?;

    let (lsel, rsel) = match on.len() {
        1 => probe(left.num_rows(), right.num_rows(), |i| lkeys[0][i], |i| rkeys[0][i], join_type),
        2 => probe(
            left.num_rows(),
            right.num_rows(),
            |i| (lkeys[0][i], lkeys[1][i]),
            |i| (rkeys[0][i], rkeys[1][i]),
            join_type,
        ),
        _ => probe(
            left.num_rows(),
            right.num_rows(),
            |i| lkeys.iter().map(|k| k[i]).collect::<Vec<_>>(),
            |i| rkeys.iter().map(|k| k[i]).collect::<Vec<_>>(),
            join_type,
        ),
    };

    // Work: build inserts + probe lookups are random accesses; the build
    // table footprint informs the LLC model.
    prof.rand_accesses += (left.num_rows() + right.num_rows()) as u64;
    prof.cpu_ops += 2 * (left.num_rows() + right.num_rows()) as u64;
    prof.hash_bytes += right.num_rows() as u64 * 16 * on.len() as u64;
    prof.seq_read_bytes += ((left.num_rows() + right.num_rows()) * 8 * on.len()) as u64;

    let out = match join_type {
        JoinType::Inner => {
            let mut fields = left.take(&lsel).fields().to_vec();
            let rtaken = right.take(&rsel);
            fields.extend(rtaken.fields().iter().cloned());
            Relation::new(fields)?
        }
        JoinType::Semi | JoinType::Anti => left.take(&lsel),
        JoinType::LeftOuter => {
            let mut fields = left.take(&lsel).fields().to_vec();
            for (name, c) in right.fields() {
                fields.push((name.clone(), Arc::new(take_optional(c, &rsel))));
            }
            fields.push((
                MATCHED_COL.to_string(),
                Arc::new(Column::Bool(rsel.iter().map(|&r| r != NONE_ROW).collect())),
            ));
            Relation::new(fields)?
        }
    };
    super::filter::charge_gather(left, &out, lsel.len(), prof);
    Ok(out)
}

/// Builds on the right, probes with the left. Returns selected row ids per
/// side; for semi/anti the right vector is empty; for left outer, unmatched
/// right slots hold `NONE_ROW`.
fn probe<K: Hash + Eq>(
    nleft: usize,
    nright: usize,
    lkey: impl Fn(usize) -> K,
    rkey: impl Fn(usize) -> K,
    join_type: JoinType,
) -> (Vec<u32>, Vec<u32>) {
    // head: key -> most recent build row; next: chain through earlier rows.
    let mut head: HashMap<K, u32> = HashMap::with_capacity(nright * 2);
    let mut next: Vec<u32> = vec![NONE_ROW; nright];
    #[allow(clippy::needless_range_loop)] // `i` is the row id being chained
    for i in 0..nright {
        match head.entry(rkey(i)) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                next[i] = *e.get();
                *e.get_mut() = i as u32;
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(i as u32);
            }
        }
    }
    let mut lsel = Vec::new();
    let mut rsel = Vec::new();
    for i in 0..nleft {
        let hit = head.get(&lkey(i)).copied();
        match join_type {
            JoinType::Inner => {
                let mut cur = hit;
                while let Some(r) = cur {
                    lsel.push(i as u32);
                    rsel.push(r);
                    cur = (next[r as usize] != NONE_ROW).then(|| next[r as usize]);
                }
            }
            JoinType::Semi => {
                if hit.is_some() {
                    lsel.push(i as u32);
                }
            }
            JoinType::Anti => {
                if hit.is_none() {
                    lsel.push(i as u32);
                }
            }
            JoinType::LeftOuter => {
                let mut cur = hit;
                if cur.is_none() {
                    lsel.push(i as u32);
                    rsel.push(NONE_ROW);
                }
                while let Some(r) = cur {
                    lsel.push(i as u32);
                    rsel.push(r);
                    cur = (next[r as usize] != NONE_ROW).then(|| next[r as usize]);
                }
            }
        }
    }
    (lsel, rsel)
}

/// Gathers rows, substituting a type default where the index is `NONE_ROW`.
fn take_optional(col: &Column, sel: &[u32]) -> Column {
    match col {
        Column::Int64(v) => Column::Int64(
            sel.iter().map(|&i| if i == NONE_ROW { 0 } else { v[i as usize] }).collect(),
        ),
        Column::Int32(v) => Column::Int32(
            sel.iter().map(|&i| if i == NONE_ROW { 0 } else { v[i as usize] }).collect(),
        ),
        Column::Float64(v) => Column::Float64(
            sel.iter().map(|&i| if i == NONE_ROW { 0.0 } else { v[i as usize] }).collect(),
        ),
        Column::Decimal(v, s) => Column::Decimal(
            sel.iter().map(|&i| if i == NONE_ROW { 0 } else { v[i as usize] }).collect(),
            *s,
        ),
        Column::Date(v) => Column::Date(
            sel.iter().map(|&i| if i == NONE_ROW { 0 } else { v[i as usize] }).collect(),
        ),
        Column::Bool(v) => {
            Column::Bool(sel.iter().map(|&i| i != NONE_ROW && v[i as usize]).collect())
        }
        Column::Str(d) => {
            let mut b = DictBuilder::with_capacity(sel.len());
            for &i in sel {
                b.push(if i == NONE_ROW { "" } else { d.get(i as usize) });
            }
            Column::Str(b.finish())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(pairs: Vec<(&str, Vec<i64>)>) -> Relation {
        Relation::new(
            pairs.into_iter().map(|(n, v)| (n.to_string(), Arc::new(Column::Int64(v)))).collect(),
        )
        .unwrap()
    }

    fn run(l: &Relation, r: &Relation, on: Vec<(&str, &str)>, jt: JoinType) -> Relation {
        let on: Vec<(String, String)> =
            on.into_iter().map(|(a, b)| (a.to_string(), b.to_string())).collect();
        let mut p = WorkProfile::new();
        exec_join(l, r, &on, jt, &mut p).unwrap()
    }

    #[test]
    fn inner_join_matches_keys() {
        let l = rel(vec![("lk", vec![1, 2, 3, 2]), ("lv", vec![10, 20, 30, 40])]);
        let r = rel(vec![("rk", vec![2, 4]), ("rv", vec![200, 400])]);
        let out = run(&l, &r, vec![("lk", "rk")], JoinType::Inner);
        assert_eq!(out.num_rows(), 2);
        assert_eq!(out.column("lv").unwrap().as_i64().unwrap(), &[20, 40]);
        assert_eq!(out.column("rv").unwrap().as_i64().unwrap(), &[200, 200]);
    }

    #[test]
    fn inner_join_expands_duplicates() {
        let l = rel(vec![("lk", vec![1])]);
        let r = rel(vec![("rk", vec![1, 1, 1])]);
        let out = run(&l, &r, vec![("lk", "rk")], JoinType::Inner);
        assert_eq!(out.num_rows(), 3);
    }

    #[test]
    fn semi_and_anti_partition_left() {
        let l = rel(vec![("lk", vec![1, 2, 3])]);
        let r = rel(vec![("rk", vec![2, 2])]);
        let semi = run(&l, &r, vec![("lk", "rk")], JoinType::Semi);
        assert_eq!(semi.column("lk").unwrap().as_i64().unwrap(), &[2]);
        let anti = run(&l, &r, vec![("lk", "rk")], JoinType::Anti);
        assert_eq!(anti.column("lk").unwrap().as_i64().unwrap(), &[1, 3]);
        assert_eq!(semi.num_rows() + anti.num_rows(), l.num_rows());
    }

    #[test]
    fn left_outer_marks_matches() {
        let l = rel(vec![("lk", vec![1, 2])]);
        let r = rel(vec![("rk", vec![2]), ("rv", vec![99])]);
        let out = run(&l, &r, vec![("lk", "rk")], JoinType::LeftOuter);
        assert_eq!(out.num_rows(), 2);
        assert_eq!(out.column(MATCHED_COL).unwrap().as_bool().unwrap(), &[false, true]);
        assert_eq!(out.column("rv").unwrap().as_i64().unwrap(), &[0, 99]);
    }

    #[test]
    fn two_key_join() {
        let l = rel(vec![("a", vec![1, 1, 2]), ("b", vec![10, 20, 10])]);
        let r = rel(vec![("c", vec![1, 2]), ("d", vec![20, 10]), ("rv", vec![7, 8])]);
        let out = run(&l, &r, vec![("a", "c"), ("b", "d")], JoinType::Inner);
        assert_eq!(out.num_rows(), 2);
        assert_eq!(out.column("rv").unwrap().as_i64().unwrap(), &[7, 8]);
    }

    #[test]
    fn string_keys_rejected() {
        let l =
            Relation::new(vec![("s".into(), Arc::new(Column::Str(["a"].into_iter().collect())))])
                .unwrap();
        let r = rel(vec![("rk", vec![1])]);
        let mut p = WorkProfile::new();
        let err =
            exec_join(&l, &r, &[("s".to_string(), "rk".to_string())], JoinType::Inner, &mut p);
        assert!(matches!(err, Err(EngineError::Unsupported(_))));
    }
}
