//! Shared plumbing for the out-of-core spill rung (DESIGN.md §16).
//!
//! When Grace partitioning cannot shrink an operator's working set under the
//! budget, the join/aggregate/sort operators stage partition inputs on the
//! query's [`SpillDisk`] and stream them back partition-at-a-time. This
//! module holds what those three rungs share: the fixed row wire format, the
//! RAII chunk set that guarantees spill capacity is released on every exit
//! path, and the mapping from [`SpillError`] onto the engine's existing
//! typed errors (no new variants — a full disk is resource exhaustion, an
//! unreadable chunk is an integrity failure on the synthetic `__spill`
//! table).

use wimpi_storage::spill::{SpillChunkId, SpillDisk, SpillError};

use crate::error::EngineError;
use crate::governor::QueryContext;
use crate::stats::WorkProfile;

/// Hard cap on spill-partition fan-out; doubling starts where Grace's
/// `MAX_GRACE_PARTS` gave up. A hot key that still does not fit at this
/// fan-out cannot be split by hashing at all, so the operator re-raises the
/// typed `ResourceExhausted` it would have raised without a disk.
pub(super) const MAX_SPILL_PARTS: usize = 1 << 16;

/// Serialized spill rows are `(global row id, key slots)`:
/// a little-endian `u32` followed by `nkeys` little-endian `i64`s.
pub(super) fn spill_row_bytes(nkeys: usize) -> usize {
    4 + 8 * nkeys
}

/// Appends one row to a partition staging buffer.
#[inline]
pub(super) fn encode_spill_row(buf: &mut Vec<u8>, row: u32, slots: &[Vec<i64>], i: usize) {
    buf.extend_from_slice(&row.to_le_bytes());
    for col in slots {
        buf.extend_from_slice(&col[i].to_le_bytes());
    }
}

/// Iterates `(row, key slots)` pairs out of a verified spill chunk. The
/// scratch slot buffer is reused across rows (callers copy what they keep).
pub(super) struct SpillRowReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    slots: Vec<i64>,
}

impl<'a> SpillRowReader<'a> {
    pub(super) fn new(bytes: &'a [u8], nkeys: usize) -> Self {
        debug_assert_eq!(bytes.len() % spill_row_bytes(nkeys), 0);
        SpillRowReader { bytes, pos: 0, slots: vec![0; nkeys] }
    }

    /// The next `(row, slots)` pair, or `None` at the end of the chunk.
    #[allow(clippy::should_implement_trait)] // lending iterator: borrows self
    pub(super) fn next(&mut self) -> Option<(u32, &[i64])> {
        if self.pos >= self.bytes.len() {
            return None;
        }
        let row = u32::from_le_bytes(self.bytes[self.pos..self.pos + 4].try_into().unwrap());
        self.pos += 4;
        for s in self.slots.iter_mut() {
            *s = i64::from_le_bytes(self.bytes[self.pos..self.pos + 8].try_into().unwrap());
            self.pos += 8;
        }
        Some((row, &self.slots))
    }
}

/// Maps a spill-disk failure onto the engine's existing typed errors.
///
/// - `DiskFull` → `ResourceExhausted` whose operator names the spill disk,
///   so callers (and the bench's rung classifier) can tell "budget too
///   small" from "disk too small" while reusing one error shape.
/// - `Unreadable` → `Integrity` on the synthetic table `__spill` (the
///   operator name travels in the column field), carrying both checksums.
pub(super) fn spill_to_engine(e: SpillError, operator: &str) -> EngineError {
    match e {
        SpillError::DiskFull { requested, capacity, .. } => EngineError::ResourceExhausted {
            requested,
            budget: capacity,
            operator: format!("{operator} (spill disk full)"),
        },
        SpillError::Unreadable { chunk, expected, actual, .. } => EngineError::Integrity {
            table: "__spill".to_string(),
            column: operator.to_string(),
            chunk: chunk as usize,
            expected,
            actual,
        },
        SpillError::UnknownChunk { chunk } => {
            EngineError::Plan(format!("{operator}: spill chunk {chunk} vanished"))
        }
    }
}

/// Folds a spill-counter delta into an operator's work profile. Spill
/// traffic is deliberately *not* mirrored into `seq_read/write_bytes`: the
/// roofline prices those at memory bandwidth, while `spilled_bytes` is
/// priced separately at microSD bandwidth by `modeled_spill_penalty`.
pub(super) fn note_spill_delta(prof: &mut WorkProfile, delta: wimpi_storage::spill::SpillCounters) {
    prof.spilled_bytes += delta.spilled_bytes;
    prof.spill_read_retries += delta.read_retries;
    prof.spill_corruptions_detected += delta.corruptions_detected;
}

/// The chunks one operator invocation staged on the spill disk. Dropping
/// the set frees every chunk, so capacity is returned on success, on error
/// escalation, and on fan-out restarts alike.
pub(super) struct SpillSet<'a> {
    disk: &'a SpillDisk,
    operator: &'a str,
    ids: Vec<SpillChunkId>,
}

impl<'a> SpillSet<'a> {
    pub(super) fn new(ctx: &'a QueryContext, operator: &'a str) -> Option<Self> {
        ctx.spill().map(|disk| SpillSet { disk, operator, ids: Vec::new() })
    }

    /// Writes one chunk, returning its index within this set.
    pub(super) fn write(&mut self, payload: &[u8]) -> crate::error::Result<usize> {
        let id = self.disk.write(payload).map_err(|e| spill_to_engine(e, self.operator))?;
        self.ids.push(id);
        Ok(self.ids.len() - 1)
    }

    /// Reads chunk `idx` back; checksum verification and priced retries
    /// happen inside the disk.
    pub(super) fn read(&self, idx: usize) -> crate::error::Result<Vec<u8>> {
        self.disk.read(self.ids[idx]).map_err(|e| spill_to_engine(e, self.operator))
    }
}

impl Drop for SpillSet<'_> {
    fn drop(&mut self) {
        for id in self.ids.drain(..) {
            self.disk.free(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use wimpi_storage::spill::SpillConfig;

    #[test]
    #[allow(clippy::needless_range_loop)] // `i` walks rows and columns alike
    fn row_codec_roundtrips() {
        let slots = vec![vec![1i64, -5, i64::MAX], vec![7i64, 0, i64::MIN]];
        let mut buf = Vec::new();
        for i in 0..3 {
            encode_spill_row(&mut buf, i as u32 * 10, &slots, i);
        }
        assert_eq!(buf.len(), 3 * spill_row_bytes(2));
        let mut r = SpillRowReader::new(&buf, 2);
        for i in 0..3 {
            let (row, s) = r.next().unwrap();
            assert_eq!(row, i as u32 * 10);
            assert_eq!(s, &[slots[0][i], slots[1][i]]);
        }
        assert!(r.next().is_none());
    }

    #[test]
    fn spill_set_frees_chunks_on_drop() {
        let disk = Arc::new(SpillDisk::new(SpillConfig::with_capacity(1 << 16)));
        let ctx = QueryContext::new().with_spill(Arc::clone(&disk));
        {
            let mut set = SpillSet::new(&ctx, "test").unwrap();
            set.write(&[1u8; 100]).unwrap();
            set.write(&[2u8; 200]).unwrap();
            assert_eq!(disk.used(), 300);
            assert_eq!(set.read(0).unwrap(), vec![1u8; 100]);
        }
        assert_eq!(disk.used(), 0, "drop returns all spill capacity");
        assert_eq!(disk.counters().spilled_bytes, 300, "ledger keeps lifetime totals");
    }

    #[test]
    fn disk_full_maps_to_resource_exhausted_with_spill_marker() {
        let disk = Arc::new(SpillDisk::new(SpillConfig::with_capacity(64)));
        let ctx = QueryContext::new().with_spill(disk);
        let mut set = SpillSet::new(&ctx, "join build").unwrap();
        match set.write(&[0u8; 128]).unwrap_err() {
            EngineError::ResourceExhausted { requested, budget, operator } => {
                assert_eq!(requested, 128);
                assert_eq!(budget, 64);
                assert!(operator.contains("spill disk full"), "operator was {operator:?}");
            }
            other => panic!("expected ResourceExhausted, got {other:?}"),
        }
    }

    #[test]
    fn unreadable_maps_to_integrity_on_the_spill_table() {
        use wimpi_storage::spill::SpillFaults;
        let cfg = SpillConfig::with_capacity(1 << 16)
            .with_faults(SpillFaults { seed: 1, torn_every: 0, corrupt_every: 1, slow_every: 0 })
            .with_max_read_retries(2);
        let disk = Arc::new(SpillDisk::new(cfg));
        let ctx = QueryContext::new().with_spill(disk);
        let mut set = SpillSet::new(&ctx, "aggregate").unwrap();
        let idx = set.write(&[9u8; 64]).unwrap();
        match set.read(idx).unwrap_err() {
            EngineError::Integrity { table, column, expected, actual, .. } => {
                assert_eq!(table, "__spill");
                assert_eq!(column, "aggregate");
                assert_ne!(expected, actual);
            }
            other => panic!("expected Integrity, got {other:?}"),
        }
    }
}
