//! Compile-once expression bytecode for the fused executor (DESIGN.md §13).
//!
//! [`Program::compile`] lowers an [`Expr`] tree into a flat postfix program
//! (`Arc<Vec<Op>>`) evaluated by a tiny stack VM, replacing the recursive
//! column-at-a-time walks of [`crate::eval`] in the fused executor's hot
//! loop. Every slot is an `i64` in exactly the [`super::key_values`]
//! encoding — decimal mantissas, dictionary codes, `f64::to_bits`, widened
//! narrow integers — so the compiled path is bit-identical per row to the
//! materializing evaluator: same fixed-point rescale factors, same
//! `f64` conversions (scalar constants go through [`Value::as_f64`] at
//! compile time, just as [`crate::eval`] does at run time), same both-sides
//! evaluation of AND/OR. String predicates compile to per-dictionary-value
//! masks indexed by code, mirroring the evaluator's dictionary idiom.
//!
//! Anything the ISA cannot express — column-vs-column string comparison,
//! `SUBSTR`, `CASE` over strings, operands the evaluator would reject —
//! makes [`Program::compile`] return `None` and the caller falls back to
//! the materializing path, which then either succeeds or reports the exact
//! error the query would have produced anyway.

use std::cell::RefCell;
use std::sync::Arc;

use crate::eval::{self, POW10};
use crate::expr::{BinOp, Expr};
use crate::like::like_match;
use crate::relation::Relation;
use wimpi_storage::{Column, DataType, Date32, Value};

/// Compile-time type of a VM slot; mirrors the column types the evaluator
/// would materialize for the same sub-expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ty {
    /// Raw `i64`.
    I64,
    /// `i32` widened to `i64`.
    I32,
    /// Days since epoch, widened to `i64`.
    Date,
    /// Decimal mantissa at the given scale.
    Dec(u8),
    /// `f64` carried as `to_bits() as i64`.
    F64,
    /// `bool` as 0/1.
    Bool,
    /// Dictionary code widened to `i64`.
    Str,
}

impl Ty {
    fn of_column(c: &Column) -> Ty {
        match c {
            Column::Int64(_) => Ty::I64,
            Column::Int32(_) => Ty::I32,
            Column::Date(_) => Ty::Date,
            Column::Decimal(_, s) => Ty::Dec(*s),
            Column::Float64(_) => Ty::F64,
            Column::Bool(_) => Ty::Bool,
            Column::Str(_) => Ty::Str,
        }
    }

    /// The column type the evaluator would produce for this slot type.
    pub fn data_type(self) -> DataType {
        match self {
            Ty::I64 => DataType::Int64,
            Ty::I32 => DataType::Int32,
            Ty::Date => DataType::Date,
            Ty::Dec(s) => DataType::Decimal(s),
            Ty::F64 => DataType::Float64,
            Ty::Bool => DataType::Bool,
            Ty::Str => DataType::Utf8,
        }
    }

    /// Fixed-point scale, if this type is on the evaluator's fixed path.
    fn fixed_scale(self) -> Option<u8> {
        match self {
            Ty::I64 | Ty::I32 | Ty::Date => Some(0),
            Ty::Dec(s) => Some(s),
            Ty::F64 | Ty::Bool | Ty::Str => None,
        }
    }

    /// Streamed bytes per row, matching the evaluator's charge model.
    fn width(self) -> u64 {
        match self {
            Ty::I64 | Ty::Dec(_) | Ty::F64 => 8,
            Ty::I32 | Ty::Date | Ty::Str => 4,
            Ty::Bool => 1,
        }
    }
}

/// One postfix VM instruction. Operands live on an `i64` stack.
#[derive(Debug, Clone)]
enum Op {
    /// Push column slot (key_values encoding) for the current row.
    Load(u16),
    /// Push an immediate slot.
    Const(i64),
    /// Fixed-point comparison: pop b, a; push `cmp(a*fa, b*fb)`.
    CmpFixed {
        op: BinOp,
        fa: i128,
        fb: i128,
    },
    /// Fixed-point add/sub after rescaling both mantissas.
    AddFixed {
        fa: i64,
        fb: i64,
    },
    SubFixed {
        fa: i64,
        fb: i64,
    },
    /// Fixed-point multiply; scales add.
    MulFixed,
    /// Fixed-point multiply whose result scale is capped: `(a*b)/div`.
    MulFixedCapped {
        div: i128,
    },
    /// Fixed-point divide: floats out, `(a/da)/(b/db)`.
    DivFixed {
        da: f64,
        db: f64,
    },
    /// Convert a fixed slot to an f64 slot: `(m as f64) / div`.
    FixedToF64 {
        div: f64,
    },
    /// Float comparison via `total_cmp`, operands are f64 bit patterns.
    CmpF64 {
        op: BinOp,
    },
    /// Float arithmetic, operands and result are f64 bit patterns.
    ArithF64 {
        op: BinOp,
    },
    /// Boolean connectives over 0/1 slots (both sides already evaluated).
    And,
    Or,
    Not,
    /// Pop a dictionary code; push `masks[mask][code]`.
    DictMask {
        mask: u16,
    },
    /// Pop a mantissa; push `lists[list].contains(m) != negated`.
    InFixed {
        list: u16,
        negated: bool,
    },
    /// Pop days-since-epoch; push the calendar year.
    Year,
    /// Pop otherwise, then, cond; push the picked branch (same repr).
    CaseRaw,
    /// CaseRaw for decimal branches rescaled to a common scale.
    CaseFixed {
        ft: i64,
        fo: i64,
    },
}

fn op_stack_effect(op: &Op) -> i32 {
    match op {
        Op::Load(_) | Op::Const(_) => 1,
        Op::CmpFixed { .. }
        | Op::AddFixed { .. }
        | Op::SubFixed { .. }
        | Op::MulFixed
        | Op::MulFixedCapped { .. }
        | Op::DivFixed { .. }
        | Op::CmpF64 { .. }
        | Op::ArithF64 { .. }
        | Op::And
        | Op::Or => -1,
        Op::Not | Op::DictMask { .. } | Op::InFixed { .. } | Op::Year | Op::FixedToF64 { .. } => 0,
        Op::CaseRaw | Op::CaseFixed { .. } => -2,
    }
}

/// Specialized single-pass predicate forms recognized by a peephole pass,
/// so the most common conjuncts (`col <cmp> const`, string membership,
/// numeric IN / BETWEEN) skip interpreter dispatch entirely. Zone-map
/// pruning (`exec::prune`) interprets the same forms against per-morsel
/// column summaries, which is why they are crate-visible.
#[derive(Debug, Clone)]
pub(crate) enum Quick {
    CmpConst { col: u16, op: BinOp, fa: i128, rhs: i128 },
    Dict { col: u16, mask: u16 },
    InFixed { col: u16, list: u16, negated: bool },
    RangeFixed { col: u16, fa_lo: i128, lo: i128, fa_hi: i128, hi: i128 },
}

/// A borrowed typed view of one bound column, read per row by the VM.
enum ColView<'a> {
    I64(&'a [i64]),
    I32(&'a [i32]),
    Date(&'a [i32]),
    Dec(&'a [i64]),
    F64(&'a [f64]),
    Bool(&'a [bool]),
    Str(&'a [u32]),
}

impl ColView<'_> {
    #[inline]
    fn slot(&self, i: usize) -> i64 {
        match self {
            ColView::I64(v) | ColView::Dec(v) => v[i],
            ColView::I32(v) | ColView::Date(v) => v[i] as i64,
            ColView::F64(v) => v[i].to_bits() as i64,
            ColView::Bool(v) => v[i] as i64,
            ColView::Str(v) => v[i] as i64,
        }
    }
}

/// The row set one batch evaluation runs over: a dense morsel range or the
/// surviving rows of an upstream selection vector.
enum Rows<'a> {
    Dense(std::ops::Range<usize>),
    Sparse(&'a [u32]),
}

impl Rows<'_> {
    fn len(&self) -> usize {
        match self {
            Rows::Dense(r) => r.len(),
            Rows::Sparse(s) => s.len(),
        }
    }
}

/// One vectorized VM stack entry: a scalar constant, or a pooled buffer
/// holding the value for every row in the batch.
enum Slot {
    S(i64),
    V(Vec<i64>),
}

impl Slot {
    #[inline]
    fn at(&self, j: usize) -> i64 {
        match self {
            Slot::S(k) => *k,
            Slot::V(v) => v[j],
        }
    }

    fn free(self) {
        if let Slot::V(v) = self {
            put_slots(v);
        }
    }
}

/// Gathers one column into slot encoding for a whole batch, with the column
/// variant matched once outside the copy loop.
fn load_batch(view: &ColView, rows: &Rows, out: &mut Vec<i64>) {
    out.clear();
    out.reserve(rows.len());
    macro_rules! go {
        ($v:ident, $x:ident, $conv:expr) => {
            match rows {
                Rows::Dense(r) => out.extend($v[r.clone()].iter().map(|&$x| $conv)),
                Rows::Sparse(s) => out.extend(s.iter().map(|&i| {
                    let $x = $v[i as usize];
                    $conv
                })),
            }
        };
    }
    match view {
        ColView::I64(v) | ColView::Dec(v) => go!(v, x, x),
        ColView::I32(v) | ColView::Date(v) => go!(v, x, x as i64),
        ColView::F64(v) => go!(v, x, x.to_bits() as i64),
        ColView::Bool(v) => go!(v, x, x as i64),
        ColView::Str(v) => go!(v, x, x as i64),
    }
}

/// Vectorized three-way select (`CaseRaw` / `CaseFixed`): pops otherwise,
/// then, and condition, pushing the per-row select with the `CaseFixed`
/// rescale factors applied to whichever branch was taken.
fn case_batch(stack: &mut Vec<Slot>, ft: i64, fo: i64) {
    let o = stack.pop().expect("stack");
    let t = stack.pop().expect("stack");
    let c = stack.pop().expect("stack");
    let out = match c {
        Slot::S(c0) => {
            let (keep, drop, f) = if c0 != 0 { (t, o, ft) } else { (o, t, fo) };
            drop.free();
            match keep {
                Slot::S(k) => Slot::S(k * f),
                Slot::V(mut v) => {
                    if f != 1 {
                        for p in v.iter_mut() {
                            *p *= f;
                        }
                    }
                    Slot::V(v)
                }
            }
        }
        Slot::V(mut cv) => {
            for (j, c) in cv.iter_mut().enumerate() {
                *c = if *c != 0 { t.at(j) * ft } else { o.at(j) * fo };
            }
            t.free();
            o.free();
            Slot::V(cv)
        }
    };
    stack.push(out);
}

/// A compiled expression: postfix ops plus the constant pools and column
/// bindings they index. Compiled once per query, shared across workers.
pub struct Program {
    ops: Arc<Vec<Op>>,
    cols: Vec<Arc<Column>>,
    masks: Vec<Vec<bool>>,
    lists: Vec<Vec<i64>>,
    out: Ty,
    max_stack: usize,
    quick: Option<Quick>,
}

/// Result of compiling one sub-expression: a (possibly empty) op fragment
/// plus what it leaves behind — a constant the evaluator would fold, or a
/// typed slot on the stack.
struct Frag {
    ops: Vec<Op>,
    out: Out,
}

enum Out {
    Scalar(Value),
    Col(Ty),
}

impl Frag {
    fn scalar(v: Value) -> Frag {
        Frag { ops: Vec::new(), out: Out::Scalar(v) }
    }
    fn is_str(&self) -> bool {
        matches!(self.out, Out::Col(Ty::Str)) || matches!(&self.out, Out::Scalar(Value::Str(_)))
    }
}

struct Compiler<'r> {
    rel: &'r Relation,
    cols: Vec<(String, Arc<Column>)>,
    masks: Vec<Vec<bool>>,
    lists: Vec<Vec<i64>>,
}

impl<'r> Compiler<'r> {
    fn col_index(&mut self, name: &str) -> Option<(u16, Ty)> {
        if let Some(i) = self.cols.iter().position(|(n, _)| n == name) {
            return Some((i as u16, Ty::of_column(&self.cols[i].1)));
        }
        let c = Arc::clone(self.rel.column(name).ok()?);
        let ty = Ty::of_column(&c);
        let i = self.cols.len();
        if i > u16::MAX as usize {
            return None;
        }
        self.cols.push((name.to_string(), c));
        Some((i as u16, ty))
    }

    /// Materializes a scalar as a constant slot, mirroring how the
    /// evaluator's `Column::repeat` would type it.
    fn emit_scalar(ops: &mut Vec<Op>, v: &Value) -> Option<Ty> {
        let (slot, ty) = match v {
            Value::I64(x) => (*x, Ty::I64),
            Value::I32(x) => (*x as i64, Ty::I32),
            Value::Date(d) => (d.0 as i64, Ty::Date),
            Value::Dec(d) => (d.mantissa(), Ty::Dec(d.scale())),
            Value::Bool(b) => (*b as i64, Ty::Bool),
            Value::F64(f) => (f.to_bits() as i64, Ty::F64),
            Value::Str(_) => return None,
        };
        ops.push(Op::Const(slot));
        Some(ty)
    }

    /// Forces a fragment into an emitted slot (materializing scalars).
    fn to_slot(frag: Frag) -> Option<(Vec<Op>, Ty)> {
        match frag.out {
            Out::Col(ty) => Some((frag.ops, ty)),
            Out::Scalar(v) => {
                let mut ops = frag.ops;
                let ty = Self::emit_scalar(&mut ops, &v)?;
                Some((ops, ty))
            }
        }
    }

    /// Appends the conversion the evaluator's `float_view` applies, if any.
    fn to_f64_slot(frag: Frag) -> Option<Vec<Op>> {
        match frag.out {
            Out::Scalar(v) => {
                let f = v.as_f64()?;
                let mut ops = frag.ops;
                ops.push(Op::Const(f.to_bits() as i64));
                Some(ops)
            }
            Out::Col(ty) => {
                let mut ops = frag.ops;
                match ty {
                    Ty::F64 => {}
                    Ty::I64 | Ty::I32 => ops.push(Op::FixedToF64 { div: 1.0 }),
                    Ty::Dec(s) => ops.push(Op::FixedToF64 { div: POW10[s as usize] as f64 }),
                    // `float_view` has no Date/Bool/Str conversion: the
                    // evaluator errors here, so the fused path falls back.
                    Ty::Date | Ty::Bool | Ty::Str => return None,
                }
                Some(ops)
            }
        }
    }

    fn compile(&mut self, e: &Expr) -> Option<Frag> {
        match e {
            Expr::Col(name) => {
                let (i, ty) = self.col_index(name)?;
                Some(Frag { ops: vec![Op::Load(i)], out: Out::Col(ty) })
            }
            Expr::Lit(v) => Some(Frag::scalar(v.clone())),
            Expr::Bin { op, left, right } => self.compile_bin(*op, left, right),
            Expr::Not(inner) => {
                let f = self.compile(inner)?;
                match f.out {
                    Out::Scalar(Value::Bool(b)) => Some(Frag::scalar(Value::Bool(!b))),
                    Out::Scalar(_) => None,
                    Out::Col(Ty::Bool) => {
                        let mut ops = f.ops;
                        ops.push(Op::Not);
                        Some(Frag { ops, out: Out::Col(Ty::Bool) })
                    }
                    Out::Col(_) => None,
                }
            }
            Expr::Like { expr, pattern, negated } => {
                let f = self.compile(expr)?;
                match f.out {
                    Out::Scalar(Value::Str(s)) => {
                        Some(Frag::scalar(Value::Bool(like_match(&s, pattern) != *negated)))
                    }
                    Out::Scalar(_) => None,
                    Out::Col(Ty::Str) => {
                        self.dict_predicate(f.ops, |v| like_match(v, pattern) != *negated)
                    }
                    Out::Col(_) => None,
                }
            }
            Expr::InList { expr, list, negated } => self.compile_in(expr, list, *negated),
            Expr::Between { expr, low, high } => {
                // Same desugaring as the evaluator: expr >= low AND expr <= high.
                let desugared = (*expr.clone())
                    .gte(Expr::Lit(low.clone()))
                    .and((*expr.clone()).lte(Expr::Lit(high.clone())));
                self.compile(&desugared)
            }
            Expr::Case { when, then, otherwise } => self.compile_case(when, then, otherwise),
            Expr::ExtractYear(inner) => {
                let f = self.compile(inner)?;
                let (mut ops, ty) = Self::to_slot(f)?;
                if ty != Ty::Date {
                    return None;
                }
                ops.push(Op::Year);
                Some(Frag { ops, out: Out::Col(Ty::I32) })
            }
            Expr::Substr { .. } => None,
        }
    }

    /// Compiles a dictionary-mask predicate over a `Str` slot. The ops must
    /// end in the `Load` of the string column (the only Str producer), whose
    /// dictionary the mask is computed against at compile time.
    fn dict_predicate(&mut self, ops: Vec<Op>, pred: impl Fn(&str) -> bool) -> Option<Frag> {
        let col = match ops.last() {
            Some(Op::Load(i)) => *i,
            _ => return None,
        };
        let dict = self.cols[col as usize].1.as_str().ok()?;
        let mask: Vec<bool> = dict.values().iter().map(|v| pred(v)).collect();
        let m = self.masks.len();
        if m > u16::MAX as usize {
            return None;
        }
        self.masks.push(mask);
        let mut ops = ops;
        ops.push(Op::DictMask { mask: m as u16 });
        Some(Frag { ops, out: Out::Col(Ty::Bool) })
    }

    fn compile_bin(&mut self, op: BinOp, l: &Expr, r: &Expr) -> Option<Frag> {
        let lf = self.compile(l)?;
        let rf = self.compile(r)?;
        if op.is_logical() {
            return Self::assemble_logical(op, lf, rf);
        }
        // Scalar-scalar folds exactly as the evaluator folds.
        if let (Out::Scalar(a), Out::Scalar(b)) = (&lf.out, &rf.out) {
            return Some(Frag::scalar(eval::fold_scalar(op, a, b).ok()?));
        }
        if lf.is_str() || rf.is_str() {
            return self.assemble_str_cmp(op, lf, rf);
        }
        self.assemble_numeric(op, lf, rf)
    }

    fn assemble_logical(op: BinOp, lf: Frag, rf: Frag) -> Option<Frag> {
        let to_bool = |f: Frag| -> Option<Vec<Op>> {
            match f.out {
                Out::Scalar(Value::Bool(b)) => {
                    let mut ops = f.ops;
                    ops.push(Op::Const(b as i64));
                    Some(ops)
                }
                Out::Scalar(_) => None,
                Out::Col(Ty::Bool) => Some(f.ops),
                Out::Col(_) => None,
            }
        };
        let mut ops = to_bool(lf)?;
        ops.extend(to_bool(rf)?);
        ops.push(if op == BinOp::And { Op::And } else { Op::Or });
        Some(Frag { ops, out: Out::Col(Ty::Bool) })
    }

    fn assemble_str_cmp(&mut self, op: BinOp, lf: Frag, rf: Frag) -> Option<Frag> {
        // Only column-vs-scalar string comparison compiles; column-vs-column
        // (row-wise decode) and str-vs-non-str (an evaluator error) fall back.
        let (col_frag, scalar, flipped) = match (&lf.out, &rf.out) {
            (Out::Col(Ty::Str), Out::Scalar(Value::Str(s))) => (lf.ops, s.clone(), false),
            (Out::Scalar(Value::Str(s)), Out::Col(Ty::Str)) => {
                let s = s.clone();
                (rf.ops, s, true)
            }
            _ => return None,
        };
        self.dict_predicate(col_frag, |v| {
            let ord = if flipped { scalar.as_str().cmp(v) } else { v.cmp(scalar.as_str()) };
            eval::cmp_ord(op, ord)
        })
    }

    fn assemble_numeric(&mut self, op: BinOp, lf: Frag, rf: Frag) -> Option<Frag> {
        let fixed_of = |out: &Out| -> Option<u8> {
            match out {
                Out::Col(ty) => ty.fixed_scale(),
                Out::Scalar(v) => match v {
                    Value::I64(_) | Value::I32(_) | Value::Date(_) => Some(0),
                    Value::Dec(d) => Some(d.scale()),
                    _ => None,
                },
            }
        };
        if let (Some(sa), Some(sb)) = (fixed_of(&lf.out), fixed_of(&rf.out)) {
            // Fixed-point fast path, same rescale factors as the evaluator.
            let (lops, _) = Self::to_slot(lf)?;
            let (rops, _) = Self::to_slot(rf)?;
            let mut ops = lops;
            ops.extend(rops);
            let s = sa.max(sb);
            let (out, opcode) = if op.is_comparison() {
                let fa = POW10[(s - sa) as usize] as i128;
                let fb = POW10[(s - sb) as usize] as i128;
                (Ty::Bool, Op::CmpFixed { op, fa, fb })
            } else {
                match op {
                    BinOp::Add | BinOp::Sub => {
                        let fa = POW10[(s - sa) as usize];
                        let fb = POW10[(s - sb) as usize];
                        let opc = if op == BinOp::Add {
                            Op::AddFixed { fa, fb }
                        } else {
                            Op::SubFixed { fa, fb }
                        };
                        (Ty::Dec(s), opc)
                    }
                    BinOp::Mul => {
                        let s = sa + sb;
                        if s > eval::MAX_SCALE {
                            let div = POW10[(s - eval::MAX_SCALE) as usize] as i128;
                            (Ty::Dec(eval::MAX_SCALE), Op::MulFixedCapped { div })
                        } else {
                            (Ty::Dec(s), Op::MulFixed)
                        }
                    }
                    BinOp::Div => {
                        let da = POW10[sa as usize] as f64;
                        let db = POW10[sb as usize] as f64;
                        (Ty::F64, Op::DivFixed { da, db })
                    }
                    _ => unreachable!("logical ops handled earlier"),
                }
            };
            ops.push(opcode);
            return Some(Frag { ops, out: Out::Col(out) });
        }
        // Float fallback path.
        let mut ops = Self::to_f64_slot(lf)?;
        ops.extend(Self::to_f64_slot(rf)?);
        let out = if op.is_comparison() {
            ops.push(Op::CmpF64 { op });
            Ty::Bool
        } else {
            ops.push(Op::ArithF64 { op });
            Ty::F64
        };
        Some(Frag { ops, out: Out::Col(out) })
    }

    fn compile_in(&mut self, expr: &Expr, list: &[Value], negated: bool) -> Option<Frag> {
        let f = self.compile(expr)?;
        match f.out {
            Out::Scalar(s) => Some(Frag::scalar(Value::Bool(list.contains(&s) != negated))),
            Out::Col(Ty::Str) => {
                let wanted: Vec<&str> = list.iter().filter_map(|v| v.as_str()).collect();
                if wanted.len() != list.len() {
                    return None; // evaluator: "IN list type mismatch"
                }
                self.dict_predicate(f.ops, |v| wanted.contains(&v) != negated)
            }
            Out::Col(ty) => {
                let scale = ty.fixed_scale()?;
                let wanted: Vec<i64> =
                    list.iter().map(|l| eval::fixed_scalar(l, scale)).collect::<Option<_>>()?;
                let li = self.lists.len();
                if li > u16::MAX as usize {
                    return None;
                }
                self.lists.push(wanted);
                let mut ops = f.ops;
                ops.push(Op::InFixed { list: li as u16, negated });
                Some(Frag { ops, out: Out::Col(Ty::Bool) })
            }
        }
    }

    fn compile_case(&mut self, when: &Expr, then: &Expr, otherwise: &Expr) -> Option<Frag> {
        let wf = self.compile(when)?;
        let (wops, wty) = Self::to_slot(wf)?;
        if wty != Ty::Bool {
            return None;
        }
        let tf = self.compile(then)?;
        let of = self.compile(otherwise)?;
        let (tops, tt) = Self::to_slot(tf)?;
        let (oops, to) = Self::to_slot(of)?;
        let mut ops = wops;
        let (out, tail) = match (tt, to) {
            (Ty::Dec(sa), Ty::Dec(sb)) => {
                let s = sa.max(sb);
                let ft = POW10[(s - sa) as usize];
                let fo = POW10[(s - sb) as usize];
                ops.extend(tops);
                ops.extend(oops);
                (Ty::Dec(s), Op::CaseFixed { ft, fo })
            }
            (Ty::I64, Ty::I64) => {
                ops.extend(tops);
                ops.extend(oops);
                (Ty::I64, Op::CaseRaw)
            }
            (Ty::F64, Ty::F64) => {
                ops.extend(tops);
                ops.extend(oops);
                (Ty::F64, Op::CaseRaw)
            }
            _ => {
                // Mixed numeric branches fall back to floats, like eval_case.
                ops.extend(Self::to_f64_slot(Frag { ops: tops, out: Out::Col(tt) })?);
                ops.extend(Self::to_f64_slot(Frag { ops: oops, out: Out::Col(to) })?);
                (Ty::F64, Op::CaseRaw)
            }
        };
        ops.push(tail);
        Some(Frag { ops, out: Out::Col(out) })
    }
}

impl Program {
    /// Compiles `expr` against `rel`'s schema, or returns `None` when the
    /// expression needs a fallback to the materializing evaluator.
    pub fn compile(expr: &Expr, rel: &Relation) -> Option<Program> {
        let mut c = Compiler { rel, cols: Vec::new(), masks: Vec::new(), lists: Vec::new() };
        let frag = c.compile(expr)?;
        let (ops, out) = Compiler::to_slot(frag)?;
        let mut depth = 0i32;
        let mut max_stack = 0i32;
        for op in &ops {
            depth += op_stack_effect(op);
            max_stack = max_stack.max(depth);
        }
        debug_assert_eq!(depth, 1, "a program leaves exactly one slot");
        let quick = Self::peephole(&ops);
        Some(Program {
            ops: Arc::new(ops),
            cols: c.cols.into_iter().map(|(_, c)| c).collect(),
            masks: c.masks,
            lists: c.lists,
            out,
            max_stack: max_stack.max(1) as usize,
            quick,
        })
    }

    fn peephole(ops: &[Op]) -> Option<Quick> {
        match ops {
            [Op::Load(c), Op::Const(k), Op::CmpFixed { op, fa, fb }] => {
                Some(Quick::CmpConst { col: *c, op: *op, fa: *fa, rhs: *k as i128 * fb })
            }
            [Op::Load(c), Op::DictMask { mask }] => Some(Quick::Dict { col: *c, mask: *mask }),
            [Op::Load(c), Op::InFixed { list, negated }] => {
                Some(Quick::InFixed { col: *c, list: *list, negated: *negated })
            }
            [Op::Load(c), Op::Const(lo), Op::CmpFixed { op: BinOp::Ge, fa: fa_lo, fb: fb_lo }, Op::Load(c2), Op::Const(hi), Op::CmpFixed { op: BinOp::Le, fa: fa_hi, fb: fb_hi }, Op::And]
                if c == c2 =>
            {
                Some(Quick::RangeFixed {
                    col: *c,
                    fa_lo: *fa_lo,
                    lo: *lo as i128 * fb_lo,
                    fa_hi: *fa_hi,
                    hi: *hi as i128 * fb_hi,
                })
            }
            _ => None,
        }
    }

    /// Output slot type.
    pub fn out(&self) -> Ty {
        self.out
    }

    /// `Some(b)` when the whole program folded to the boolean constant `b`
    /// (e.g. a literal-only conjunct). The fused filter drops constant-true
    /// conjuncts and short-circuits the morsel loop on constant-false.
    pub fn const_bool(&self) -> Option<bool> {
        match (self.ops.as_slice(), self.out) {
            ([Op::Const(k)], Ty::Bool) => Some(*k != 0),
            _ => None,
        }
    }

    /// Streamed bytes per row across the distinct columns this program
    /// reads — the fused executor's per-conjunct charge width.
    pub fn width_bytes(&self) -> u64 {
        self.cols.iter().map(|c| Ty::of_column(c).width()).sum()
    }

    /// Number of distinct columns read.
    pub fn num_cols(&self) -> usize {
        self.cols.len()
    }

    /// The peephole-specialized predicate form, when one was recognized.
    pub(crate) fn quick(&self) -> Option<&Quick> {
        self.quick.as_ref()
    }

    /// The column bound to slot `i` — shared `Arc`s straight from the source
    /// relation, so pruning can resolve them back to table columns with
    /// `Arc::ptr_eq`.
    pub(crate) fn col(&self, i: usize) -> &Arc<Column> {
        &self.cols[i]
    }

    /// The dictionary-code membership mask in pool slot `i`.
    pub(crate) fn mask(&self, i: usize) -> &[bool] {
        &self.masks[i]
    }

    /// The IN-list mantissas in pool slot `i` (unordered).
    pub(crate) fn list(&self, i: usize) -> &[i64] {
        &self.lists[i]
    }

    fn views(&self) -> Vec<ColView<'_>> {
        self.cols
            .iter()
            .map(|c| match &**c {
                Column::Int64(v) => ColView::I64(v),
                Column::Int32(v) => ColView::I32(v),
                Column::Date(v) => ColView::Date(v),
                Column::Decimal(v, _) => ColView::Dec(v),
                Column::Float64(v) => ColView::F64(v),
                Column::Bool(v) => ColView::Bool(v),
                Column::Str(d) => ColView::Str(d.codes()),
            })
            .collect()
    }

    /// Evaluates the whole program column-at-a-time over one row set: every
    /// opcode runs one tight loop over the batch before the next dispatches,
    /// so interpreter overhead is paid per (op, morsel) instead of per
    /// (op, row). Scalar operands stay scalar (`Slot::S`) — a `x * (1 - d)`
    /// program touches no constant vectors — and vector operands are folded
    /// in place, so a program allocates nothing in steady state beyond its
    /// pooled `Load` buffers. The per-element arithmetic is identical to the
    /// old row VM, which is what keeps the result bit-exact.
    fn eval_batch(&self, views: &[ColView], rows: &Rows) -> Slot {
        let mut stack: Vec<Slot> = Vec::with_capacity(self.max_stack);

        macro_rules! bin {
            (|$a:ident, $b:ident| $body:expr) => {{
                let rhs = stack.pop().expect("stack");
                let lhs = stack.pop().expect("stack");
                let out = match (lhs, rhs) {
                    (Slot::S($a), Slot::S($b)) => Slot::S($body),
                    (Slot::V(mut av), Slot::S($b)) => {
                        for p in av.iter_mut() {
                            let $a = *p;
                            *p = $body;
                        }
                        Slot::V(av)
                    }
                    (Slot::S($a), Slot::V(mut bv)) => {
                        for p in bv.iter_mut() {
                            let $b = *p;
                            *p = $body;
                        }
                        Slot::V(bv)
                    }
                    (Slot::V(mut av), Slot::V(bv)) => {
                        for (p, &$b) in av.iter_mut().zip(&bv) {
                            let $a = *p;
                            *p = $body;
                        }
                        put_slots(bv);
                        Slot::V(av)
                    }
                };
                stack.push(out);
            }};
        }
        macro_rules! un {
            (|$a:ident| $body:expr) => {{
                let out = match stack.pop().expect("stack") {
                    Slot::S($a) => Slot::S($body),
                    Slot::V(mut av) => {
                        for p in av.iter_mut() {
                            let $a = *p;
                            *p = $body;
                        }
                        Slot::V(av)
                    }
                };
                stack.push(out);
            }};
        }

        for op in self.ops.iter() {
            match op {
                Op::Load(c) => {
                    let mut buf = take_slots();
                    load_batch(&views[*c as usize], rows, &mut buf);
                    stack.push(Slot::V(buf));
                }
                Op::Const(k) => stack.push(Slot::S(*k)),
                Op::CmpFixed { op, fa, fb } => {
                    let (op, fa, fb) = (*op, *fa, *fb);
                    if fa == 1 && fb == 1 {
                        bin!(|a, b| eval::cmp_ord(op, a.cmp(&b)) as i64)
                    } else {
                        bin!(|a, b| eval::cmp_ord(op, (a as i128 * fa).cmp(&(b as i128 * fb)))
                            as i64)
                    }
                }
                Op::AddFixed { fa, fb } => {
                    let (fa, fb) = (*fa, *fb);
                    bin!(|a, b| a * fa + b * fb)
                }
                Op::SubFixed { fa, fb } => {
                    let (fa, fb) = (*fa, *fb);
                    bin!(|a, b| a * fa - b * fb)
                }
                Op::MulFixed => bin!(|a, b| a * b),
                Op::MulFixedCapped { div } => {
                    let div = *div;
                    bin!(|a, b| (a as i128 * b as i128 / div) as i64)
                }
                Op::DivFixed { da, db } => {
                    let (da, db) = (*da, *db);
                    bin!(|a, b| ((a as f64 / da) / (b as f64 / db)).to_bits() as i64)
                }
                Op::FixedToF64 { div } => {
                    let div = *div;
                    un!(|a| (a as f64 / div).to_bits() as i64)
                }
                Op::CmpF64 { op } => {
                    let op = *op;
                    bin!(|a, b| eval::cmp_f64(
                        op,
                        f64::from_bits(a as u64),
                        f64::from_bits(b as u64)
                    ) as i64)
                }
                Op::ArithF64 { op } => {
                    let op = *op;
                    bin!(|a, b| eval::arith_f64(
                        op,
                        f64::from_bits(a as u64),
                        f64::from_bits(b as u64)
                    )
                    .to_bits() as i64)
                }
                Op::And => bin!(|a, b| ((a != 0) && (b != 0)) as i64),
                Op::Or => bin!(|a, b| ((a != 0) || (b != 0)) as i64),
                Op::Not => un!(|a| (a == 0) as i64),
                Op::DictMask { mask } => {
                    let m = &self.masks[*mask as usize];
                    un!(|a| m[a as usize] as i64)
                }
                Op::InFixed { list, negated } => {
                    let (l, neg) = (&self.lists[*list as usize], *negated);
                    un!(|a| (l.contains(&a) != neg) as i64)
                }
                Op::Year => un!(|a| Date32(a as i32).year() as i64),
                Op::CaseRaw => case_batch(&mut stack, 1, 1),
                Op::CaseFixed { ft, fo } => case_batch(&mut stack, *ft, *fo),
            }
        }
        stack.pop().expect("program leaves one slot")
    }

    /// Runs a boolean program over a dense row range, appending survivors.
    /// Panics in debug if the program's output is not boolean.
    pub fn filter_range(&self, range: std::ops::Range<usize>, sel: &mut Vec<u32>) {
        debug_assert_eq!(self.out, Ty::Bool);
        let views = self.views();
        let rows = Rows::Dense(range);
        match &self.quick {
            Some(q) => self.quick_filter(q, &views, &rows, sel),
            None => self.slow_filter(&views, &rows, sel),
        }
    }

    /// Runs a boolean program over candidate rows, appending survivors.
    pub fn filter_sel(&self, cand: &[u32], out: &mut Vec<u32>) {
        debug_assert_eq!(self.out, Ty::Bool);
        let views = self.views();
        let rows = Rows::Sparse(cand);
        match &self.quick {
            Some(q) => self.quick_filter(q, &views, &rows, out),
            None => self.slow_filter(&views, &rows, out),
        }
    }

    /// General filter: batch-evaluate the program, then sweep the boolean
    /// slots for survivors.
    fn slow_filter(&self, views: &[ColView], rows: &Rows, out: &mut Vec<u32>) {
        match self.eval_batch(views, rows) {
            Slot::S(k) => {
                if k != 0 {
                    match rows {
                        Rows::Dense(r) => out.extend(r.clone().map(|i| i as u32)),
                        Rows::Sparse(s) => out.extend_from_slice(s),
                    }
                }
            }
            Slot::V(v) => {
                let start = out.len();
                out.resize(start + v.len(), 0);
                let dst = &mut out[start..];
                let mut k = 0usize;
                match rows {
                    Rows::Dense(r) => {
                        for (j, i) in r.clone().enumerate() {
                            dst[k] = i as u32;
                            k += (v[j] != 0) as usize;
                        }
                    }
                    Rows::Sparse(s) => {
                        for (j, &i) in s.iter().enumerate() {
                            dst[k] = i;
                            k += (v[j] != 0) as usize;
                        }
                    }
                }
                out.truncate(start + k);
                put_slots(v);
            }
        }
    }

    /// Single-pass filters with the column variant matched *outside* the
    /// loop: the common conjuncts (date range scans, dictionary membership)
    /// run as branch-per-row compares over native slices, with the i128
    /// rescale path kept only for mixed-scale decimal comparisons.
    fn quick_filter(&self, q: &Quick, views: &[ColView], rows: &Rows, out: &mut Vec<u32>) {
        // Branch-free compaction: the candidate row id is written
        // unconditionally and the cursor advances by the predicate's truth
        // value, so a 30%-selectivity conjunct costs no mispredicts. The
        // over-provisioned tail is truncated away afterwards.
        macro_rules! keep {
            (|$i:ident| $pred:expr) => {{
                let start = out.len();
                match rows {
                    Rows::Dense(r) => {
                        out.resize(start + r.len(), 0);
                        let dst = &mut out[start..];
                        let mut k = 0usize;
                        for $i in r.clone() {
                            dst[k] = $i as u32;
                            k += ($pred) as usize;
                        }
                        out.truncate(start + k);
                    }
                    Rows::Sparse(s) => {
                        out.resize(start + s.len(), 0);
                        let dst = &mut out[start..];
                        let mut k = 0usize;
                        for &row in *s {
                            let $i = row as usize;
                            dst[k] = row;
                            k += ($pred) as usize;
                        }
                        out.truncate(start + k);
                    }
                }
            }};
        }
        match q {
            Quick::CmpConst { col, op, fa, rhs } => {
                let v = &views[*col as usize];
                let (op, fa, rhs) = (*op, *fa, *rhs);
                if fa == 1 {
                    if let Ok(r) = i64::try_from(rhs) {
                        match v {
                            ColView::I64(x) | ColView::Dec(x) => {
                                return keep!(|i| eval::cmp_ord(op, x[i].cmp(&r)));
                            }
                            ColView::I32(x) | ColView::Date(x) => {
                                return keep!(|i| eval::cmp_ord(op, (x[i] as i64).cmp(&r)));
                            }
                            _ => {}
                        }
                    }
                }
                keep!(|i| eval::cmp_ord(op, (v.slot(i) as i128 * fa).cmp(&rhs)))
            }
            Quick::Dict { col, mask } => {
                let m = &self.masks[*mask as usize];
                match &views[*col as usize] {
                    ColView::Str(codes) => keep!(|i| m[codes[i] as usize]),
                    v => keep!(|i| m[v.slot(i) as usize]),
                }
            }
            Quick::InFixed { col, list, negated } => {
                let v = &views[*col as usize];
                let l = &self.lists[*list as usize];
                let neg = *negated;
                keep!(|i| l.contains(&v.slot(i)) != neg)
            }
            Quick::RangeFixed { col, fa_lo, lo, fa_hi, hi } => {
                let v = &views[*col as usize];
                let (fa_lo, lo, fa_hi, hi) = (*fa_lo, *lo, *fa_hi, *hi);
                if fa_lo == 1 && fa_hi == 1 {
                    if let (Ok(lo), Ok(hi)) = (i64::try_from(lo), i64::try_from(hi)) {
                        match v {
                            ColView::I64(x) | ColView::Dec(x) => {
                                return keep!(|i| {
                                    let m = x[i];
                                    m >= lo && m <= hi
                                });
                            }
                            ColView::I32(x) | ColView::Date(x) => {
                                return keep!(|i| {
                                    let m = x[i] as i64;
                                    m >= lo && m <= hi
                                });
                            }
                            _ => {}
                        }
                    }
                }
                keep!(|i| {
                    let m = v.slot(i) as i128;
                    m * fa_lo >= lo && m * fa_hi <= hi
                })
            }
        }
    }

    /// Evaluates the program at each selected row into `out` slots.
    pub fn eval_sel(&self, sel: &[u32], out: &mut Vec<i64>) {
        let views = self.views();
        // Single-op column references skip the interpreter entirely.
        if let [Op::Load(c)] = self.ops.as_slice() {
            load_batch(&views[*c as usize], &Rows::Sparse(sel), out);
            return;
        }
        match self.eval_batch(&views, &Rows::Sparse(sel)) {
            Slot::S(k) => {
                out.clear();
                out.resize(sel.len(), k);
            }
            Slot::V(mut v) => {
                std::mem::swap(out, &mut v);
                put_slots(v);
            }
        }
    }

    /// Builds the column the materializing evaluator would have produced
    /// from per-row slots; `None` for string outputs (dictionary codes
    /// alone cannot rebuild a column — callers gather the source instead).
    pub fn column_from_slots(&self, slots: Vec<i64>) -> Option<Column> {
        Some(match self.out {
            Ty::I64 => Column::Int64(slots),
            Ty::I32 => Column::Int32(slots.into_iter().map(|x| x as i32).collect()),
            Ty::Date => Column::Date(slots.into_iter().map(|x| x as i32).collect()),
            Ty::Dec(s) => Column::Decimal(slots, s),
            Ty::F64 => {
                Column::Float64(slots.into_iter().map(|x| f64::from_bits(x as u64)).collect())
            }
            Ty::Bool => Column::Bool(slots.into_iter().map(|x| x != 0).collect()),
            Ty::Str => return None,
        })
    }

    /// Evaluates the full column (test hook for the bytecode-vs-evaluator
    /// property tests); `None` for string outputs.
    pub fn eval_full(&self, num_rows: usize) -> Option<Column> {
        let sel: Vec<u32> = (0..num_rows as u32).collect();
        let mut slots = Vec::new();
        self.eval_sel(&sel, &mut slots);
        self.column_from_slots(slots)
    }
}

thread_local! {
    /// Reusable VM stacks and slot buffers, so per-morsel evaluation does
    /// not allocate in steady state (same idiom as the selection-vector
    /// scratch pool in `wimpi-storage`).
    static STACKS: RefCell<Vec<Vec<i64>>> = const { RefCell::new(Vec::new()) };
}

fn take_stack(cap: usize) -> Vec<i64> {
    let mut s = STACKS.with(|p| p.borrow_mut().pop()).unwrap_or_default();
    s.clear();
    s.reserve(cap);
    s
}

fn put_stack(s: Vec<i64>) {
    STACKS.with(|p| {
        let mut pool = p.borrow_mut();
        if pool.len() < 8 {
            pool.push(s);
        }
    });
}

/// Takes a reusable `i64` slot buffer from the thread-local pool.
pub(crate) fn take_slots() -> Vec<i64> {
    take_stack(0)
}

/// Returns a slot buffer to the thread-local pool.
pub(crate) fn put_slots(v: Vec<i64>) {
    put_stack(v);
}
