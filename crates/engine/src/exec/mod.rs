//! Physical execution: a recursive, fully materializing (operator-at-a-time)
//! interpreter over [`LogicalPlan`] — the MonetDB execution style the paper
//! benchmarks. Every operator charges its work to a [`WorkProfile`].

pub mod aggregate;
pub mod filter;
pub mod join;
pub mod parallel;
pub mod sort;

use crate::error::{EngineError, Result};
use crate::eval::Evaluator;
use crate::plan::LogicalPlan;
use crate::relation::Relation;
use crate::stats::WorkProfile;
use parallel::EngineConfig;
use wimpi_storage::Catalog;

/// Executes a plan serially — today's default; identical to
/// [`execute_with`] under [`EngineConfig::serial`].
pub fn execute(plan: &LogicalPlan, catalog: &Catalog) -> Result<(Relation, WorkProfile)> {
    execute_with(plan, catalog, &EngineConfig::serial())
}

/// Executes a plan against a catalog under an execution configuration,
/// returning the result relation and the work performed. Results and work
/// profiles are bit-identical at any thread count (see [`parallel`]).
pub fn execute_with(
    plan: &LogicalPlan,
    catalog: &Catalog,
    cfg: &EngineConfig,
) -> Result<(Relation, WorkProfile)> {
    let mut prof = WorkProfile::new();
    let rel = exec_node(plan, catalog, &mut prof, cfg)?;
    prof.rows_out = rel.num_rows() as u64;
    Ok((rel, prof))
}

/// Recursive node interpreter.
pub(crate) fn exec_node(
    plan: &LogicalPlan,
    catalog: &Catalog,
    prof: &mut WorkProfile,
    cfg: &EngineConfig,
) -> Result<Relation> {
    match plan {
        LogicalPlan::Scan { table, projection } => {
            let t = catalog.table(table)?;
            let rel = Relation::from_table(t, projection.as_deref())?;
            prof.rows_in += rel.num_rows() as u64;
            Ok(rel)
        }
        LogicalPlan::Filter { input, predicate } => {
            let rel = exec_node(input, catalog, prof, cfg)?;
            filter::exec_filter(&rel, predicate, prof, cfg)
        }
        LogicalPlan::Project { input, exprs } => {
            let rel = exec_node(input, catalog, prof, cfg)?;
            let mut ev = Evaluator::with_config(&rel, prof, *cfg);
            let mut fields = Vec::with_capacity(exprs.len());
            for (e, name) in exprs {
                fields.push((name.clone(), ev.eval(e)?));
            }
            if fields.is_empty() {
                return Err(EngineError::Plan("empty projection".to_string()));
            }
            Relation::new(fields)
        }
        LogicalPlan::Join { left, right, on, join_type } => {
            let l = exec_node(left, catalog, prof, cfg)?;
            let r = exec_node(right, catalog, prof, cfg)?;
            join::exec_join(&l, &r, on, *join_type, prof, cfg)
        }
        LogicalPlan::Aggregate { input, group_by, aggs } => {
            let rel = exec_node(input, catalog, prof, cfg)?;
            aggregate::exec_aggregate(&rel, group_by, aggs, prof, cfg)
        }
        LogicalPlan::Sort { input, keys } => {
            let rel = exec_node(input, catalog, prof, cfg)?;
            sort::exec_sort(&rel, keys, prof)
        }
        LogicalPlan::Limit { input, n } => {
            let rel = exec_node(input, catalog, prof, cfg)?;
            let keep = rel.num_rows().min(*n);
            let sel: Vec<u32> = (0..keep as u32).collect();
            Ok(rel.take(&sel))
        }
    }
}

/// Extracts a join/group key column as `i64` values.
///
/// Strings use their dictionary codes (valid for grouping within one column;
/// joins on strings are rejected at a higher level), decimals their
/// mantissas, floats their IEEE bits — all injective encodings.
pub(crate) fn key_values(col: &wimpi_storage::Column) -> Result<Vec<i64>> {
    use wimpi_storage::Column;
    Ok(match col {
        Column::Int64(v) => v.clone(),
        Column::Int32(v) => v.iter().map(|&x| x as i64).collect(),
        Column::Date(v) => v.iter().map(|&x| x as i64).collect(),
        Column::Decimal(v, _) => v.clone(),
        Column::Bool(v) => v.iter().map(|&b| b as i64).collect(),
        Column::Str(d) => d.codes().iter().map(|&c| c as i64).collect(),
        Column::Float64(v) => v.iter().map(|&f| f.to_bits() as i64).collect(),
    })
}
