//! Physical execution: a recursive, fully materializing (operator-at-a-time)
//! interpreter over [`LogicalPlan`] — the MonetDB execution style the paper
//! benchmarks. Every operator charges its work to a [`WorkProfile`].
//!
//! Execution can be traced: [`execute_traced`] threads an enabled
//! [`Tracer`] through the interpreter, and every operator becomes a span in
//! a tree mirroring the plan. Span counters are *inclusive* (operator plus
//! its inputs), measured as work-profile deltas around each subtree, so
//! summing each span's `self` counters reproduces the query's total profile
//! exactly. The default path passes [`Tracer::off`], which reduces every
//! trace call to a branch on a `None`.

pub mod aggregate;
pub mod bytecode;
pub mod filter;
mod fused;
pub mod join;
pub mod parallel;
mod prune;
pub mod sort;
mod spill;

use crate::error::{EngineError, Result};
use crate::eval::Evaluator;
use crate::expr::Expr;
use crate::governor::QueryContext;
use crate::plan::LogicalPlan;
use crate::relation::Relation;
use crate::stats::WorkProfile;
use parallel::{EngineConfig, Executor};
use wimpi_obs::{Span, Tracer};
use wimpi_storage::Catalog;

/// Executes a plan serially — today's default; identical to
/// [`execute_with`] under [`EngineConfig::serial`].
pub fn execute(plan: &LogicalPlan, catalog: &Catalog) -> Result<(Relation, WorkProfile)> {
    execute_with(plan, catalog, &EngineConfig::serial())
}

/// Executes a plan against a catalog under an execution configuration,
/// returning the result relation and the work performed. Results and work
/// profiles are bit-identical at any thread count (see [`parallel`]).
pub fn execute_with(
    plan: &LogicalPlan,
    catalog: &Catalog,
    cfg: &EngineConfig,
) -> Result<(Relation, WorkProfile)> {
    execute_governed(plan, catalog, cfg, &QueryContext::default())
}

/// [`execute_with`] under a resource governor: the context's budget caps
/// operator scratch allocations (joins/aggregates degrade to Grace
/// partitioning before erroring), its token/deadline cancel cooperatively at
/// morsel boundaries, and the measured peak lands in
/// [`WorkProfile::peak_bytes`]. The default context reproduces ungoverned
/// execution exactly.
pub fn execute_governed(
    plan: &LogicalPlan,
    catalog: &Catalog,
    cfg: &EngineConfig,
    ctx: &QueryContext,
) -> Result<(Relation, WorkProfile)> {
    let mut prof = WorkProfile::new();
    let rel = exec_node(plan, catalog, &mut prof, cfg, Tracer::off(), ctx)?;
    prof.rows_out = rel.num_rows() as u64;
    Ok((rel, prof))
}

/// Executes a plan with operator-level tracing, returning the result, the
/// work profile, and the query's span tree. The root span's counters equal
/// the returned profile exactly, and every span's `self` counters sum back
/// to that root (the invariant `wimpi-core`'s trace checker enforces).
pub fn execute_traced(
    plan: &LogicalPlan,
    catalog: &Catalog,
    cfg: &EngineConfig,
) -> Result<(Relation, WorkProfile, Span)> {
    execute_traced_governed(plan, catalog, cfg, &QueryContext::default())
}

/// [`execute_traced`] under a resource governor (see [`execute_governed`]).
pub fn execute_traced_governed(
    plan: &LogicalPlan,
    catalog: &Catalog,
    cfg: &EngineConfig,
    ctx: &QueryContext,
) -> Result<(Relation, WorkProfile, Span)> {
    let tracer = Tracer::enabled();
    tracer.push("query", "");
    let mut prof = WorkProfile::new();
    let rel = match exec_node(plan, catalog, &mut prof, cfg, &tracer, ctx) {
        Ok(rel) => rel,
        Err(e) => {
            tracer.pop(0, 0, Vec::new());
            return Err(e);
        }
    };
    prof.rows_out = rel.num_rows() as u64;
    tracer.pop(prof.rows_in, prof.rows_out, prof.counter_pairs());
    let span = tracer.take_root().expect("traced execution produces a root span");
    Ok((rel, prof, span))
}

/// Recursive node interpreter; wraps every node in a trace span when the
/// tracer is enabled. Every node entry is a cancellation checkpoint, and
/// every node exit ratchets the measured memory peak into the profile.
pub(crate) fn exec_node(
    plan: &LogicalPlan,
    catalog: &Catalog,
    prof: &mut WorkProfile,
    cfg: &EngineConfig,
    tracer: &Tracer,
    ctx: &QueryContext,
) -> Result<Relation> {
    ctx.checkpoint()?;
    if !tracer.is_enabled() {
        let (_, rel) = exec_node_inner(plan, catalog, prof, cfg, tracer, ctx)?;
        finish_node(plan, &rel, prof, ctx);
        return Ok(rel);
    }
    let (op, label) = span_head(plan, cfg);
    tracer.push(op, &label);
    let before = *prof;
    match exec_node_inner(plan, catalog, prof, cfg, tracer, ctx) {
        Ok((rows_in, rel)) => {
            finish_node(plan, &rel, prof, ctx);
            tracer.pop(rows_in, rel.num_rows() as u64, prof.delta_since(&before).counter_pairs());
            Ok(rel)
        }
        Err(e) => {
            // Keep the span stack balanced; the trace is discarded on error.
            tracer.pop(0, 0, Vec::new());
            Err(e)
        }
    }
}

/// Closes out one operator under the governor: materialized intermediates
/// count toward the measured peak (scans share the catalog's columns and are
/// not an allocation), and the profile's `peak_bytes` ratchets up to the
/// query-wide high-water mark. The ratchet is monotone over the operator
/// sequence, so traced span deltas telescope to exactly the root's peak —
/// the property the independent trace checker validates.
fn finish_node(plan: &LogicalPlan, rel: &Relation, prof: &mut WorkProfile, ctx: &QueryContext) {
    if !matches!(plan, LogicalPlan::Scan { .. }) {
        ctx.track(rel.stream_bytes() as u64);
    }
    prof.peak_bytes = prof.peak_bytes.max(ctx.high_water());
}

/// The actual interpreter. Returns the operator's input row count alongside
/// its output so the caller can fill the span without re-deriving it.
fn exec_node_inner(
    plan: &LogicalPlan,
    catalog: &Catalog,
    prof: &mut WorkProfile,
    cfg: &EngineConfig,
    tracer: &Tracer,
    ctx: &QueryContext,
) -> Result<(u64, Relation)> {
    match plan {
        LogicalPlan::Scan { table, projection } => {
            let t = catalog.table(table)?;
            if cfg.verify_checksums {
                verify_scan(table, t, projection.as_deref(), ctx)?;
            }
            let rel = Relation::from_table(t, projection.as_deref())?;
            prof.rows_in += rel.num_rows() as u64;
            Ok((0, rel))
        }
        LogicalPlan::Filter { input, predicate } => {
            let rel = exec_node(input, catalog, prof, cfg, tracer, ctx)?;
            let rows_in = rel.num_rows() as u64;
            // A filter directly over a scan can consult the table's sealed
            // zone maps (when `cfg.prune_scans` is on); anything else has no
            // stable morsel-to-table alignment and runs unpruned.
            let table = match (cfg.prune_scans, input.as_ref()) {
                (true, LogicalPlan::Scan { table, .. }) => {
                    catalog.table(table).ok().map(|t| t.as_ref())
                }
                _ => None,
            };
            let out = if cfg.executor == Executor::Fused {
                fused::exec_filter_fused(&rel, predicate, table, prof, cfg, tracer, ctx)?
            } else {
                filter::exec_filter(&rel, predicate, table, prof, cfg, tracer, ctx)?
            };
            Ok((rows_in, out))
        }
        LogicalPlan::Project { input, exprs } => {
            let rel = exec_node(input, catalog, prof, cfg, tracer, ctx)?;
            let n = rel.num_rows() as u64;
            let mut fields = Vec::with_capacity(exprs.len());
            for (e, name) in exprs {
                let traced = tracer.is_enabled();
                if traced {
                    tracer.push("eval", name);
                }
                let before = *prof;
                let col = Evaluator::with_config(&rel, prof, *cfg).eval(e);
                if traced {
                    tracer.pop(n, n, prof.delta_since(&before).counter_pairs());
                }
                fields.push((name.clone(), col?));
            }
            if fields.is_empty() {
                return Err(EngineError::Plan("empty projection".to_string()));
            }
            Ok((n, Relation::new(fields)?))
        }
        LogicalPlan::Join { left, right, on, join_type } => {
            let l = exec_node(left, catalog, prof, cfg, tracer, ctx)?;
            let r = exec_node(right, catalog, prof, cfg, tracer, ctx)?;
            let rows_in = (l.num_rows() + r.num_rows()) as u64;
            Ok((rows_in, join::exec_join(&l, &r, on, *join_type, prof, cfg, tracer, ctx)?))
        }
        LogicalPlan::Aggregate { input, group_by, aggs } => {
            if cfg.executor == Executor::Fused {
                return fused::exec_fused(input, group_by, aggs, catalog, prof, cfg, tracer, ctx);
            }
            let rel = exec_node(input, catalog, prof, cfg, tracer, ctx)?;
            let rows_in = rel.num_rows() as u64;
            Ok((rows_in, aggregate::exec_aggregate(&rel, group_by, aggs, prof, cfg, tracer, ctx)?))
        }
        LogicalPlan::Sort { input, keys } => {
            let rel = exec_node(input, catalog, prof, cfg, tracer, ctx)?;
            let rows_in = rel.num_rows() as u64;
            Ok((rows_in, sort::exec_sort(&rel, keys, prof, ctx)?))
        }
        LogicalPlan::Limit { input, n } => {
            let rel = exec_node(input, catalog, prof, cfg, tracer, ctx)?;
            let rows_in = rel.num_rows() as u64;
            let keep = rel.num_rows().min(*n);
            if keep == rel.num_rows() {
                // The limit keeps everything: pass the input through instead
                // of gathering a full copy of every column.
                return Ok((rows_in, rel));
            }
            ensure_u32_indexable(keep, "limit")?;
            let sel: Vec<u32> = (0..keep as u32).collect();
            Ok((rows_in, rel.take(&sel)))
        }
    }
}

/// Scan-time integrity verification (DESIGN.md §12): recomputes the CRC32C
/// of every morsel-aligned chunk of the columns this scan actually reads and
/// compares them against the table's sealed manifest. Unsealed tables verify
/// trivially — manifests are opt-in like the verification itself. The
/// manifest's own self-checksum is checked first, so a bit flip *inside the
/// manifest* is reported as such rather than falsely accusing a data chunk.
fn verify_scan(
    name: &str,
    table: &wimpi_storage::Table,
    projection: Option<&[String]>,
    ctx: &QueryContext,
) -> Result<()> {
    use wimpi_storage::integrity::MANIFEST_PSEUDO_COLUMN;
    let Some(manifest) = table.manifest() else { return Ok(()) };
    if !manifest.verify_self() {
        return Err(EngineError::Integrity {
            table: name.to_string(),
            column: MANIFEST_PSEUDO_COLUMN.to_string(),
            chunk: 0,
            expected: 0,
            actual: 0,
        });
    }
    let verify_col = |cname: &str, col: &wimpi_storage::Column| -> Result<u64> {
        manifest.verify_column(cname, col).map(|n| n as u64).map_err(|v| EngineError::Integrity {
            table: name.to_string(),
            column: v.column,
            chunk: v.chunk,
            expected: v.expected,
            actual: v.actual,
        })
    };
    let mut checks = 1u64; // the self-check above
    let mut outcome = Ok(());
    let columns: Vec<&str> = match projection {
        Some(cols) => cols.iter().map(String::as_str).collect(),
        None => table.schema().fields().iter().map(|f| f.name.as_str()).collect(),
    };
    for cname in columns {
        match table.column_by_name(cname) {
            Ok(col) => match verify_col(cname, col.as_ref()) {
                Ok(n) => checks += n,
                Err(e) => {
                    outcome = Err(e);
                    break;
                }
            },
            Err(e) => {
                outcome = Err(e.into());
                break;
            }
        }
    }
    // Checks performed up to (and including) a failure are still checks;
    // the service/cluster ledgers read this to reconcile their counters.
    ctx.note_integrity_checks(checks);
    outcome
}

/// Span `(op, label)` for a plan node. Labels are short human sketches —
/// table names, predicate/key summaries — not full expression dumps. A fused
/// aggregate announces itself as `fused`: the span covers the whole peeled
/// scan→filter→eval→aggregate pipeline, not just the aggregation.
fn span_head(plan: &LogicalPlan, cfg: &EngineConfig) -> (&'static str, String) {
    match plan {
        LogicalPlan::Scan { table, .. } => ("scan", table.clone()),
        LogicalPlan::Filter { predicate, .. } => ("filter", expr_sketch(predicate)),
        LogicalPlan::Project { exprs, .. } => ("project", format!("{} exprs", exprs.len())),
        LogicalPlan::Join { on, join_type, .. } => {
            let keys: Vec<String> = on.iter().map(|(l, r)| format!("{l}={r}")).collect();
            ("join", format!("{join_type:?} {}", keys.join(",")))
        }
        LogicalPlan::Aggregate { group_by, aggs, .. } => {
            let op = if cfg.executor == Executor::Fused { "fused" } else { "aggregate" };
            (op, format!("{} keys, {} aggs", group_by.len(), aggs.len()))
        }
        LogicalPlan::Sort { keys, .. } => {
            let ks: Vec<String> = keys
                .iter()
                .map(|k| format!("{}{}", k.column, if k.descending { " desc" } else { "" }))
                .collect();
            ("sort", ks.join(","))
        }
        LogicalPlan::Limit { n, .. } => ("limit", n.to_string()),
    }
}

/// A short (≤ 48 char) debug sketch of an expression for span labels.
pub(crate) fn expr_sketch(e: &Expr) -> String {
    let full = format!("{e:?}");
    if full.len() <= 48 {
        full
    } else {
        let mut cut = 45;
        while !full.is_char_boundary(cut) {
            cut -= 1;
        }
        format!("{}...", &full[..cut])
    }
}

/// Deterministic key→partition assignment for the Grace-style fallbacks,
/// identical on every thread. `DefaultHasher::new()` uses fixed SipHash keys
/// (unlike a `HashMap`'s per-instance `RandomState`), which both the join's
/// chain-layout determinism and the budget fallbacks' partition choice rely
/// on.
#[inline]
pub(crate) fn partition_of<K: std::hash::Hash>(k: &K, nparts: usize) -> usize {
    use std::hash::Hasher;
    let mut h = std::hash::DefaultHasher::new();
    k.hash(&mut h);
    (h.finish() % nparts as u64) as usize
}

/// Rejects row counts the engine's `u32` selection vectors cannot index.
/// `u32::MAX` itself is excluded — it is the join's "no row" sentinel.
///
/// Every operator that builds a `u32` row-index vector (`filter`, `join`,
/// `aggregate`, `sort`, `limit`) guards its input through this before
/// casting; `Relation::take` can then assume in-range indices.
pub(crate) fn ensure_u32_indexable(n: usize, op: &str) -> Result<()> {
    if n >= u32::MAX as usize {
        return Err(EngineError::Unsupported(format!(
            "{op} over {n} rows exceeds the engine's u32 row-index limit"
        )));
    }
    Ok(())
}

/// Extracts a join/group key column as `i64` values.
///
/// Strings use their dictionary codes (valid for grouping within one column;
/// joins on strings are rejected at a higher level), decimals their
/// mantissas, floats their IEEE bits — all injective encodings.
pub(crate) fn key_values(col: &wimpi_storage::Column) -> Result<Vec<i64>> {
    use wimpi_storage::Column;
    Ok(match col {
        Column::Int64(v) => v.clone(),
        Column::Int32(v) => v.iter().map(|&x| x as i64).collect(),
        Column::Date(v) => v.iter().map(|&x| x as i64).collect(),
        Column::Decimal(v, _) => v.clone(),
        Column::Bool(v) => v.iter().map(|&b| b as i64).collect(),
        Column::Str(d) => d.codes().iter().map(|&c| c as i64).collect(),
        Column::Float64(v) => v.iter().map(|&f| f.to_bits() as i64).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u32_guard_rejects_only_unindexable_sizes() {
        assert!(ensure_u32_indexable(0, "test").is_ok());
        assert!(ensure_u32_indexable(u32::MAX as usize - 1, "test").is_ok());
        let err = ensure_u32_indexable(u32::MAX as usize, "sort").unwrap_err();
        assert!(matches!(err, EngineError::Unsupported(_)));
        assert!(err.to_string().contains("sort"));
        assert!(ensure_u32_indexable(u32::MAX as usize + 1, "test").is_err());
    }

    #[test]
    fn expr_sketch_truncates_long_expressions() {
        use crate::expr::{col, lit};
        let short = expr_sketch(&col("k"));
        assert!(short.len() <= 48);
        let mut e = col("a").gt(lit(0i64));
        for i in 0..10 {
            e = e.and(col("abcdefgh").lt(lit(i)));
        }
        let sketch = expr_sketch(&e);
        assert!(sketch.len() <= 48, "{}: {}", sketch.len(), sketch);
        assert!(sketch.ends_with("..."));
    }
}
