//! Zone-map scan pruning (DESIGN.md §14): per-morsel predicate verdicts
//! from sealed [`ZoneMap`] summaries, consulted by both executors before
//! any column byte is streamed.
//!
//! The prunable predicate forms are exactly the bytecode peephole's
//! [`Quick`] shapes — `col <cmp> const`, dictionary membership, numeric
//! `IN`, `BETWEEN` — interpreted here against a morsel's `(min, max)` slot
//! range or presence bitmap instead of its rows. Every verdict is
//! three-valued and *fail-closed*: anything unresolvable (no quick form, a
//! column that is not Arc-identical to a sealed table column, a span off
//! the sealed grid) is [`Verdict::Unknown`], which prunes nothing.
//!
//! Soundness: zone ranges and presence sets are conservative supersets of
//! the rows they cover (chunk unions may overhang a smaller morsel), and
//! the quick forms are monotone in the slot encoding (`fa` rescale factors
//! are positive powers of ten), so `True` means *every* covered row
//! satisfies the conjunct and `False` means *none* does. Pruning therefore
//! never changes survivors — only which bytes get streamed to find them.

use std::ops::Range;
use std::sync::Arc;

use super::bytecode::{Program, Quick};
use super::fused::Pred;
use crate::eval;
use crate::expr::BinOp;
use crate::relation::Relation;
use wimpi_storage::{Table, ZoneMap};

/// What a zone summary proves about one conjunct over one morsel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Verdict {
    /// Every row in the morsel satisfies the conjunct: skip evaluating it.
    True,
    /// No row can satisfy it: skip the whole morsel.
    False,
    /// The summary proves nothing: evaluate normally.
    Unknown,
}

impl Verdict {
    fn from_bool(b: bool) -> Verdict {
        if b {
            Verdict::True
        } else {
            Verdict::False
        }
    }

    /// Three-valued AND: `False` dominates, `True` is neutral.
    fn and(self, o: Verdict) -> Verdict {
        match (self, o) {
            (Verdict::False, _) | (_, Verdict::False) => Verdict::False,
            (Verdict::True, v) | (v, Verdict::True) => v,
            _ => Verdict::Unknown,
        }
    }
}

/// One quick predicate resolved against a sealed table column.
struct QuickZone<'a> {
    /// The table column's schema name — the zone map's lookup key.
    col: &'a str,
    kind: Kind<'a>,
}

enum Kind<'a> {
    Cmp { op: BinOp, fa: i128, rhs: i128 },
    Dict { mask: &'a [bool] },
    In { list: &'a [i64], negated: bool },
    Range { fa_lo: i128, lo: i128, fa_hi: i128, hi: i128 },
}

impl QuickZone<'_> {
    fn verdict(&self, zones: &ZoneMap, rows: &Range<usize>) -> Verdict {
        match &self.kind {
            Kind::Cmp { op, fa, rhs } => match zones.range_over(self.col, rows.clone()) {
                Some((min, max)) if *fa > 0 => cmp_verdict(*op, *fa, *rhs, min, max),
                _ => Verdict::Unknown,
            },
            Kind::Dict { mask } => match zones.presence_over(self.col, rows.clone()) {
                Some(presence) => dict_verdict(mask, &presence),
                None => Verdict::Unknown,
            },
            Kind::In { list, negated } => match zones.range_over(self.col, rows.clone()) {
                Some((min, max)) => {
                    if min == max {
                        Verdict::from_bool(list.contains(&min) != *negated)
                    } else if !list.iter().any(|&v| min <= v && v <= max) {
                        // No list element can occur: membership is false for
                        // every row, so the conjunct is `negated` everywhere.
                        Verdict::from_bool(*negated)
                    } else {
                        Verdict::Unknown
                    }
                }
                None => Verdict::Unknown,
            },
            Kind::Range { fa_lo, lo, fa_hi, hi } => {
                match zones.range_over(self.col, rows.clone()) {
                    Some((min, max)) if *fa_lo > 0 && *fa_hi > 0 => {
                        let (min, max) = (min as i128, max as i128);
                        if min * fa_lo >= *lo && max * fa_hi <= *hi {
                            Verdict::True
                        } else if max * fa_lo < *lo || min * fa_hi > *hi {
                            Verdict::False
                        } else {
                            Verdict::Unknown
                        }
                    }
                    _ => Verdict::Unknown,
                }
            }
        }
    }
}

/// `col <op> rhs` over a morsel whose slots all lie in `[min, max]`. The
/// rescale factor `fa` is a positive power of ten, so `v ↦ v·fa` is
/// monotone and endpoint evaluations bound every row's outcome.
fn cmp_verdict(op: BinOp, fa: i128, rhs: i128, min: i64, max: i64) -> Verdict {
    let ev = |v: i64| eval::cmp_ord(op, (v as i128 * fa).cmp(&rhs));
    if min == max {
        return Verdict::from_bool(ev(min));
    }
    match op {
        // Downward-closed: true at the max ⇒ true everywhere below it.
        BinOp::Lt | BinOp::Le if ev(max) => Verdict::True,
        BinOp::Lt | BinOp::Le if !ev(min) => Verdict::False,
        // Upward-closed: true at the min ⇒ true everywhere above it.
        BinOp::Gt | BinOp::Ge if ev(min) => Verdict::True,
        BinOp::Gt | BinOp::Ge if !ev(max) => Verdict::False,
        BinOp::Eq if rhs < min as i128 * fa || rhs > max as i128 * fa => Verdict::False,
        BinOp::Ne if rhs < min as i128 * fa || rhs > max as i128 * fa => Verdict::True,
        _ => Verdict::Unknown,
    }
}

/// Dictionary membership over the union of presence bitmaps: the present
/// codes are a superset of the codes actually in the morsel, so "all
/// present codes pass" proves every row passes and "none passes" proves
/// none does.
fn dict_verdict(mask: &[bool], presence: &[u64]) -> Verdict {
    let (mut any, mut all, mut seen) = (false, true, false);
    for (w, &word) in presence.iter().enumerate() {
        let mut bits = word;
        while bits != 0 {
            let code = w * 64 + bits.trailing_zeros() as usize;
            bits &= bits - 1;
            seen = true;
            match mask.get(code) {
                Some(true) => any = true,
                Some(false) => all = false,
                None => return Verdict::Unknown,
            }
        }
    }
    if !seen {
        Verdict::Unknown
    } else if all {
        Verdict::True
    } else if !any {
        Verdict::False
    } else {
        Verdict::Unknown
    }
}

/// One compiled conjunct's prune plan, mirroring [`Pred`]'s shape.
enum ConjZone<'a> {
    /// No quick form resolved against the table: always `Unknown`.
    Opaque,
    One(QuickZone<'a>),
    /// OR of AND-chains; unresolved chain members stay `None` (`Unknown`).
    AnyOf(Vec<Vec<Option<QuickZone<'a>>>>),
}

impl ConjZone<'_> {
    fn verdict(&self, zones: &ZoneMap, rows: &Range<usize>) -> Verdict {
        match self {
            ConjZone::Opaque => Verdict::Unknown,
            ConjZone::One(q) => q.verdict(zones, rows),
            ConjZone::AnyOf(chains) => {
                let mut all_false = true;
                for chain in chains {
                    let mut v = Verdict::True;
                    for qz in chain {
                        v = v.and(qz.as_ref().map_or(Verdict::Unknown, |q| q.verdict(zones, rows)));
                        if v == Verdict::False {
                            break;
                        }
                    }
                    match v {
                        Verdict::True => return Verdict::True,
                        Verdict::False => {}
                        Verdict::Unknown => all_false = false,
                    }
                }
                if all_false {
                    Verdict::False
                } else {
                    Verdict::Unknown
                }
            }
        }
    }

    /// Whether this plan can ever return a non-`Unknown` verdict under the
    /// given zone map (the column it reads actually has the summary kind
    /// its quick form consults).
    fn can_decide(&self, zones: &ZoneMap) -> bool {
        let quick_decides = |q: &QuickZone| {
            zones.column(q.col).is_some_and(|c| match q.kind {
                Kind::Dict { .. } => c.presence.is_some(),
                _ => c.ranges.is_some(),
            })
        };
        match self {
            ConjZone::Opaque => false,
            ConjZone::One(q) => quick_decides(q),
            ConjZone::AnyOf(chains) => chains.iter().flatten().flatten().any(quick_decides),
        }
    }
}

/// Resolves one program's quick form against the table, deriving the zone
/// map's column name by `Arc` identity — the only link that survives the
/// zero-copy `Relation::from_table` plumbing and is immune to renames.
fn quick_zone<'a>(prog: &'a Program, table: &'a Table) -> Option<QuickZone<'a>> {
    let (slot, kind) = match prog.quick()? {
        Quick::CmpConst { col, op, fa, rhs } => (*col, Kind::Cmp { op: *op, fa: *fa, rhs: *rhs }),
        Quick::Dict { col, mask } => (*col, Kind::Dict { mask: prog.mask(*mask as usize) }),
        Quick::InFixed { col, list, negated } => {
            (*col, Kind::In { list: prog.list(*list as usize), negated: *negated })
        }
        Quick::RangeFixed { col, fa_lo, lo, fa_hi, hi } => {
            (*col, Kind::Range { fa_lo: *fa_lo, lo: *lo, fa_hi: *fa_hi, hi: *hi })
        }
    };
    let arc = prog.col(slot as usize);
    let j = (0..table.num_columns()).find(|&j| Arc::ptr_eq(arc, table.column(j)))?;
    Some(QuickZone { col: &table.schema().fields()[j].name, kind })
}

fn conj_zone<'a>(pred: &'a Pred, table: &'a Table) -> ConjZone<'a> {
    match pred {
        Pred::One(p) => quick_zone(p, table).map_or(ConjZone::Opaque, ConjZone::One),
        Pred::AnyOf(chains) => ConjZone::AnyOf(
            chains
                .iter()
                .map(|chain| chain.iter().map(|p| quick_zone(p, table)).collect())
                .collect(),
        ),
    }
}

/// A per-scan pruner: the sealed zone map plus one prune plan per filter
/// conjunct, in the executors' conjunct order. Borrows only shared state,
/// so the morsel closures can consult it from any worker.
pub(crate) struct ScanPruner<'a> {
    zones: &'a ZoneMap,
    conjuncts: Vec<ConjZone<'a>>,
}

impl<'a> ScanPruner<'a> {
    /// Builds a pruner when pruning can possibly pay off: the table has
    /// sealed zones, the scanned relation is the table's own rows (so morsel
    /// offsets index the sealed grid), and at least one conjunct's quick
    /// form reads a summarized column. `None` means "run unpruned".
    pub(crate) fn new(
        table: &'a Table,
        conjuncts: &'a [Pred],
        nrows: usize,
    ) -> Option<ScanPruner<'a>> {
        let zones = table.zones()?;
        if nrows != table.num_rows() {
            return None;
        }
        let plans: Vec<ConjZone<'a>> = conjuncts.iter().map(|p| conj_zone(p, table)).collect();
        if plans.iter().any(|p| p.can_decide(zones)) {
            Some(ScanPruner { zones, conjuncts: plans })
        } else {
            None
        }
    }

    /// Per-conjunct verdicts for one morsel, in conjunct order.
    pub(crate) fn verdicts(&self, rows: &Range<usize>) -> Vec<Verdict> {
        self.conjuncts.iter().map(|c| c.verdict(self.zones, rows)).collect()
    }
}

/// The materializing filter's prune pre-pass: compiles the split conjuncts
/// (best-effort; conjuncts the bytecode can't express stay `Unknown`),
/// takes one verdict sweep over the morsel grid, and reports which morsels
/// to skip and which conjuncts never need evaluating.
pub(crate) struct FilterPrune {
    /// Rows of every surviving morsel, ascending — the seed candidate list.
    /// Meaningful only when `pruned_morsels > 0`.
    pub keep: Vec<u32>,
    /// Conjuncts (in split order) proven true over every surviving morsel.
    pub always_true: Vec<bool>,
    /// Streamed-bytes-per-row of each compiled conjunct (0 if uncompiled),
    /// for pricing an elided evaluation.
    pub widths: Vec<u64>,
    pub pruned_morsels: u64,
    pub pruned_bytes: u64,
}

/// Runs the pre-pass, or `None` when it proves nothing (no morsel skipped
/// and no conjunct always-true) — the caller then filters exactly as if
/// pruning were off.
pub(crate) fn prune_filter(
    conjuncts: &[crate::expr::Expr],
    rel: &Relation,
    table: &Table,
    morsel_rows: usize,
) -> Option<FilterPrune> {
    let compiled: Vec<Option<Pred>> = conjuncts
        .iter()
        .map(|c| match super::fused::compile_conjunct(c, rel) {
            Some(super::fused::Compiled::Pred(p)) => Some(p),
            // Constants are the evaluator's job; uncompilable stays Unknown.
            _ => None,
        })
        .collect();
    // Keep the compiled conjuncts and which split slot each came from.
    let mut slots = Vec::new();
    let mut preds = Vec::new();
    for (i, p) in compiled.into_iter().enumerate() {
        if let Some(p) = p {
            slots.push(i);
            preds.push(p);
        }
    }
    let pruner = ScanPruner::new(table, &preds, rel.num_rows())?;
    let widths: Vec<u64> = {
        let mut w = vec![0u64; conjuncts.len()];
        for (slot, p) in slots.iter().zip(&preds) {
            w[*slot] = p.width_bytes();
        }
        w
    };
    let first_width = preds.first().map_or(0, Pred::width_bytes);

    let ranges = wimpi_storage::morsel::morsel_ranges(rel.num_rows(), morsel_rows);
    let mut keep: Vec<u32> = Vec::new();
    let mut always_true = vec![true; conjuncts.len()];
    let (mut pruned_morsels, mut pruned_bytes) = (0u64, 0u64);
    for r in &ranges {
        let verdicts = pruner.verdicts(r);
        if verdicts.contains(&Verdict::False) {
            pruned_morsels += 1;
            // Credit the first conjunct's full-column scan over this morsel
            // — the bytes the unpruned filter is guaranteed to have
            // streamed (later conjuncts only read survivors, unknowable
            // without running).
            pruned_bytes += r.len() as u64 * first_width;
            continue;
        }
        keep.extend(r.clone().map(|i| i as u32));
        for (slot, v) in slots.iter().zip(&verdicts) {
            if *v != Verdict::True {
                always_true[*slot] = false;
            }
        }
    }
    // A conjunct is only provably redundant over morsels the sweep saw;
    // uncompiled conjuncts were never proven anything.
    for (i, w) in widths.iter().enumerate() {
        if *w == 0 {
            always_true[i] = false;
        }
    }
    if pruned_morsels == 0 && !always_true.iter().any(|&t| t) {
        return None;
    }
    Some(FilterPrune { keep, always_true, widths, pruned_morsels, pruned_bytes })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit, Expr};
    use wimpi_storage::{Column, DataType, Field, Schema, Value};

    /// 300 rows sealed on a 100-row zone grid: `k` ascending 0..300, `p`
    /// decimal mantissas 5·i at scale 2, `m` chunk-segregated modes, `f`
    /// floats (never summarized).
    fn table() -> Table {
        let modes: Vec<&str> = (0..300).map(|i| ["AIR", "RAIL", "SHIP"][i / 100]).collect();
        Table::new(
            Schema::new(vec![
                Field::new("k", DataType::Int64),
                Field::new("p", DataType::Decimal(2)),
                Field::new("m", DataType::Utf8),
                Field::new("f", DataType::Float64),
            ]),
            vec![
                Column::Int64((0..300).collect()),
                Column::Decimal((0..300).map(|i| i * 5).collect(), 2),
                Column::Str(modes.into_iter().collect()),
                Column::Float64((0..300).map(|i| i as f64).collect()),
            ],
        )
        .unwrap()
        .with_zone_maps_at(100)
    }

    fn compile(rel: &Relation, exprs: &[Expr]) -> Vec<Pred> {
        exprs
            .iter()
            .map(|e| match super::super::fused::compile_conjunct(e, rel) {
                Some(super::super::fused::Compiled::Pred(p)) => p,
                _ => panic!("test conjunct must compile to a predicate"),
            })
            .collect()
    }

    fn verdicts_of(t: &Table, e: Expr, spans: &[Range<usize>]) -> Vec<Verdict> {
        let rel = Relation::from_table(t, None).unwrap();
        let preds = compile(&rel, std::slice::from_ref(&e));
        let pruner = ScanPruner::new(t, &preds, t.num_rows()).expect("prunable");
        spans.iter().map(|r| pruner.verdicts(r)[0]).collect()
    }

    #[test]
    fn comparison_verdicts_follow_the_range() {
        let t = table();
        assert_eq!(
            verdicts_of(&t, col("k").lt(lit(100i64)), &[0..100, 100..200, 50..150]),
            [Verdict::True, Verdict::False, Verdict::Unknown]
        );
        assert_eq!(
            verdicts_of(&t, col("k").gte(lit(200i64)), &[200..300, 0..100, 150..250]),
            [Verdict::True, Verdict::False, Verdict::Unknown]
        );
        // Equality: provably absent vs possibly present vs a pinned chunk.
        assert_eq!(
            verdicts_of(&t, col("k").eq(lit(150i64)), &[0..100, 100..200]),
            [Verdict::False, Verdict::Unknown]
        );
        assert_eq!(
            verdicts_of(&t, col("k").neq(lit(150i64)), &[0..100, 100..200]),
            [Verdict::True, Verdict::Unknown]
        );
        // Decimal compares run over mantissas: p < 5.00 keeps only i < 100.
        let five = wimpi_storage::Decimal64::from_str_scale("5.00", 2).unwrap();
        assert_eq!(
            verdicts_of(&t, col("p").lt(lit(five)), &[0..100, 100..200]),
            [Verdict::True, Verdict::False]
        );
    }

    #[test]
    fn between_and_in_verdicts() {
        let t = table();
        let between = col("k").gte(lit(100i64)).and(col("k").lte(lit(199i64)));
        assert_eq!(
            verdicts_of(&t, between, &[100..200, 0..100, 50..150]),
            [Verdict::True, Verdict::False, Verdict::Unknown]
        );
        let in_list = col("k").in_list(vec![Value::I64(7), Value::I64(250)]);
        assert_eq!(
            verdicts_of(&t, in_list, &[100..200, 0..100]),
            [Verdict::False, Verdict::Unknown]
        );
    }

    #[test]
    fn dictionary_presence_verdicts() {
        let t = table();
        assert_eq!(
            verdicts_of(&t, col("m").eq(lit("AIR")), &[0..100, 100..200, 50..150]),
            [Verdict::True, Verdict::False, Verdict::Unknown]
        );
    }

    #[test]
    fn or_chains_combine_disjunct_verdicts() {
        let t = table();
        let e = col("k").lt(lit(100i64)).or(col("m").eq(lit("RAIL")));
        assert_eq!(
            verdicts_of(&t, e, &[0..100, 100..200, 200..300]),
            [Verdict::True, Verdict::True, Verdict::False]
        );
    }

    #[test]
    fn pruner_fails_closed() {
        let t = table();
        let rel = Relation::from_table(&t, None).unwrap();
        // Floats have no zone summaries: nothing decidable, no pruner.
        let preds = compile(&rel, &[col("f").lt(lit(10.0))]);
        assert!(ScanPruner::new(&t, &preds, t.num_rows()).is_none());
        // A relation that is not the table's own rows gets no pruner.
        let preds = compile(&rel, &[col("k").lt(lit(100i64))]);
        assert!(ScanPruner::new(&t, &preds, 100).is_none());
        // No sealed zones, no pruner.
        let bare = table();
        let unsealed = bare.with_replaced_column(0, Column::Int64((0..300).collect())).unwrap();
        let rel2 = Relation::from_table(&unsealed, None).unwrap();
        let preds = compile(&rel2, &[col("k").lt(lit(100i64))]);
        assert!(ScanPruner::new(&unsealed, &preds, 300).is_none());
        // Off-grid spans stay Unknown rather than pruning.
        let off_grid = std::slice::from_ref(&(0..1000));
        assert_eq!(verdicts_of(&t, col("k").lt(lit(0i64)), off_grid), [Verdict::Unknown]);
    }

    #[test]
    fn prune_filter_reports_skips_and_redundant_conjuncts() {
        let t = table();
        let rel = Relation::from_table(&t, None).unwrap();
        let conjuncts = vec![col("k").lt(lit(100i64)), col("f").lt(lit(1e9))];
        let fp = prune_filter(&conjuncts, &rel, &t, 100).expect("prunes two morsels");
        assert_eq!(fp.pruned_morsels, 2);
        assert_eq!(fp.keep, (0..100).collect::<Vec<u32>>());
        // k < 100 is always true over the one surviving morsel; the float
        // conjunct never compiled to a quick form and must stay enforced.
        assert_eq!(fp.always_true, [true, false]);
        assert_eq!(fp.widths[0], 8);
        assert_eq!(fp.pruned_bytes, 200 * 8);
        // Nothing provable → no pre-pass result at all.
        let nothing = vec![col("f").lt(lit(1e9))];
        assert!(prune_filter(&nothing, &rel, &t, 100).is_none());
    }
}
