//! Multi-key sorting.
//!
//! Keys are prepared as cheap orderable representations (dictionary codes are
//! replaced by lexicographic ranks), then row indices are sorted with a
//! stable comparison — ties preserve input order, keeping results
//! deterministic across runs and cluster merges.

use std::cmp::Ordering;

use crate::error::{EngineError, Result};
use crate::governor::QueryContext;
use crate::plan::SortKey;
use crate::relation::Relation;
use crate::stats::WorkProfile;
use wimpi_storage::Column;

/// One prepared sort key.
enum KeyRep {
    I64(Vec<i64>),
    F64(Vec<f64>),
    Rank(Vec<u32>),
}

impl KeyRep {
    fn cmp_rows(&self, a: usize, b: usize) -> Ordering {
        match self {
            KeyRep::I64(v) => v[a].cmp(&v[b]),
            KeyRep::F64(v) => v[a].total_cmp(&v[b]),
            KeyRep::Rank(v) => v[a].cmp(&v[b]),
        }
    }

    /// Bytes one comparison streams per row of this key: ranks are `u32`
    /// (4 B), integer/float keys are 8 B. Cost accounting must charge the
    /// width actually touched, or hwsim over-prices ORDER BY on dictionary
    /// columns by 2×.
    fn row_bytes(&self) -> u64 {
        match self {
            KeyRep::I64(_) | KeyRep::F64(_) => 8,
            KeyRep::Rank(_) => 4,
        }
    }
}

/// Sorts the relation by `keys` (most significant first).
///
/// Sorting has no Grace-style fallback — the key representations and the
/// index vector are the algorithm — so the whole buffer is reserved up
/// front. When it does not fit and a spill disk is attached, [`spill_sort`]
/// degrades to an external merge sort (DESIGN.md §16); otherwise an
/// impossible budget fails fast with `ResourceExhausted`.
pub fn exec_sort(
    rel: &Relation,
    keys: &[SortKey],
    prof: &mut WorkProfile,
    ctx: &QueryContext,
) -> Result<Relation> {
    if keys.is_empty() {
        return Err(EngineError::Plan("sort requires at least one key".to_string()));
    }
    let n = rel.num_rows();
    super::ensure_u32_indexable(n, "sort")?;
    // Key reps at their real widths (4 B ranks, 8 B ints/floats) plus the
    // 4 B/row index vector being sorted.
    let mut key_width = 4u64;
    for k in keys {
        key_width += rel.column(&k.column)?.data_type().sort_key_bytes();
    }
    let _guard = match ctx.try_reserve(n as u64 * key_width) {
        Some(g) => g,
        None if ctx.spill().is_some() => return spill_sort(rel, keys, n, key_width, prof, ctx),
        None => {
            return Err(EngineError::ResourceExhausted {
                requested: n as u64 * key_width,
                budget: ctx.budget(),
                operator: "sort".to_string(),
            })
        }
    };
    let mut reps = Vec::with_capacity(keys.len());
    for k in keys {
        let col = rel.column(&k.column)?;
        reps.push((prepare_key(col), k.descending));
    }
    ctx.checkpoint()?;
    let mut idx: Vec<u32> = (0..n as u32).collect();
    idx.sort_by(|&a, &b| {
        for (rep, desc) in &reps {
            let ord = rep.cmp_rows(a as usize, b as usize);
            if ord != Ordering::Equal {
                return if *desc { ord.reverse() } else { ord };
            }
        }
        Ordering::Equal
    });
    // n log n comparisons over all keys, plus the output gather. log2 is
    // rounded to nearest — truncation undercharged by up to one comparison
    // level per row (e.g. n=1000 paid for 9 of its ~10 levels).
    let logn = (n.max(2) as f64).log2().round() as u64;
    prof.cpu_ops += n as u64 * logn * keys.len() as u64;
    // Each comparison streams the key representations at their real widths:
    // 4 B dictionary ranks, 8 B integer/float keys.
    prof.seq_read_bytes += n as u64 * reps.iter().map(|(rep, _)| rep.row_bytes()).sum::<u64>();
    let out = rel.take(&idx);
    super::filter::charge_gather(rel, &out, n, prof);
    Ok(out)
}

/// The spill rung for sorts (DESIGN.md §16): an external merge sort over
/// the spill disk.
///
/// Each key is mapped to an order-preserving `u64` (sign-flipped integers,
/// the IEEE total-order trick for floats, lexicographic dictionary ranks;
/// descending keys are bitwise-complemented), so row order under the
/// in-memory comparator equals lexicographic order of `(encoded keys,
/// row id)` — the unique row id tie-break *is* the stable sort's
/// preserve-input-order rule. Sorted runs of budget-bounded size are staged
/// on the disk in fixed-size pages; the merge holds one page per run and
/// emits the globally least row each step. Everything is decided by row
/// counts and the budget on the coordinator thread, so the permutation is
/// bit-identical to the in-memory stable sort at any thread count.
fn spill_sort(
    rel: &Relation,
    keys: &[SortKey],
    n: usize,
    key_width: u64,
    prof: &mut WorkProfile,
    ctx: &QueryContext,
) -> Result<Relation> {
    let disk = std::sync::Arc::clone(ctx.spill().expect("spill_sort requires a disk"));
    let before = disk.counters();
    let result = spill_sort_inner(rel, keys, n, key_width, prof, ctx);
    super::spill::note_spill_delta(prof, disk.counters().delta_since(&before));
    result
}

fn spill_sort_inner(
    rel: &Relation,
    keys: &[SortKey],
    n: usize,
    key_width: u64,
    prof: &mut WorkProfile,
    ctx: &QueryContext,
) -> Result<Relation> {
    use super::spill::{SpillRowReader, SpillSet};

    let nkeys = keys.len();
    let rb = 4 + 8 * nkeys as u64; // serialized row: u32 id + u64 per key
    let mut encs = Vec::with_capacity(nkeys);
    for k in keys {
        let enc = RowEnc::new(rel.column(&k.column)?, k.descending);
        if let Some(rank) = &enc.rank {
            ctx.track(rank.len() as u64 * 4);
        }
        encs.push(enc);
    }

    // Split the remaining budget between run scratch and merge pages.
    let available = ctx.budget().saturating_sub(ctx.used()).max(1);
    let run_rows = ((available / 2 / rb) as usize).clamp(1, n.max(1));
    let nruns = n.div_ceil(run_rows).max(1);
    let page_rows = ((available / 2 / (nruns as u64 * rb)) as usize).max(1);

    let mut set = SpillSet::new(ctx, "sort").expect("disk attached");
    let mut run_chunks: Vec<Vec<usize>> = Vec::with_capacity(nruns);
    {
        // Sorted runs: encode a budget-sized slice, sort its row ids, stage
        // the (row id, keys) records in sorted order as merge-sized pages.
        let _scratch = ctx.reserve(run_rows as u64 * rb, "sort")?;
        let mut keybuf: Vec<u64> = Vec::with_capacity(run_rows * nkeys);
        for r in 0..nruns {
            ctx.checkpoint()?;
            let (lo, hi) = (r * run_rows, ((r + 1) * run_rows).min(n));
            keybuf.clear();
            for i in lo..hi {
                for e in &encs {
                    keybuf.push(e.at(i));
                }
            }
            let mut order: Vec<u32> = (lo as u32..hi as u32).collect();
            order.sort_unstable_by(|&a, &b| {
                let (ka, kb) = ((a as usize - lo) * nkeys, (b as usize - lo) * nkeys);
                keybuf[ka..ka + nkeys].cmp(&keybuf[kb..kb + nkeys]).then(a.cmp(&b))
            });
            let mut chunks = Vec::new();
            for page in order.chunks(page_rows) {
                let mut buf = Vec::with_capacity(page.len() * rb as usize);
                for &i in page {
                    buf.extend_from_slice(&i.to_le_bytes());
                    let k = (i as usize - lo) * nkeys;
                    for &e in &keybuf[k..k + nkeys] {
                        buf.extend_from_slice(&e.to_le_bytes());
                    }
                }
                chunks.push(set.write(&buf)?);
            }
            run_chunks.push(chunks);
        }
    }

    // Merge: one resident page per run, emit the least (keys, row id) row.
    let _pages = ctx.reserve(nruns as u64 * page_rows as u64 * rb, "sort")?;
    struct Cursor {
        chunks: Vec<usize>,
        next_chunk: usize,
        buf: Vec<u8>,
        pos: usize,
        cur_row: u32,
        cur_keys: Vec<u64>,
        exhausted: bool,
    }
    impl Cursor {
        fn advance(&mut self, set: &SpillSet, nkeys: usize, ctx: &QueryContext) -> Result<()> {
            if self.pos >= self.buf.len() {
                if self.next_chunk >= self.chunks.len() {
                    self.exhausted = true;
                    return Ok(());
                }
                ctx.checkpoint()?;
                self.buf = set.read(self.chunks[self.next_chunk])?;
                self.next_chunk += 1;
                self.pos = 0;
            }
            let mut rd = SpillRowReader::new(&self.buf[self.pos..], nkeys);
            let (row, slots) = rd.next().expect("page holds whole rows");
            self.cur_row = row;
            self.cur_keys.clear();
            self.cur_keys.extend(slots.iter().map(|&s| s as u64));
            self.pos += 4 + 8 * nkeys;
            Ok(())
        }
    }
    let mut cursors: Vec<Cursor> = run_chunks
        .into_iter()
        .map(|chunks| Cursor {
            chunks,
            next_chunk: 0,
            buf: Vec::new(),
            pos: 0,
            cur_row: 0,
            cur_keys: Vec::with_capacity(nkeys),
            exhausted: false,
        })
        .collect();
    for c in cursors.iter_mut() {
        c.advance(&set, nkeys, ctx)?;
    }
    // The output permutation is a sequential append, tracked like any
    // materialized intermediate.
    ctx.track(n as u64 * 4);
    let mut idx: Vec<u32> = Vec::with_capacity(n);
    loop {
        let mut best: Option<usize> = None;
        for (c, cur) in cursors.iter().enumerate() {
            if cur.exhausted {
                continue;
            }
            best = match best {
                None => Some(c),
                Some(b) => {
                    let cb = &cursors[b];
                    if (&cur.cur_keys, cur.cur_row) < (&cb.cur_keys, cb.cur_row) {
                        Some(c)
                    } else {
                        Some(b)
                    }
                }
            };
        }
        let Some(b) = best else { break };
        idx.push(cursors[b].cur_row);
        cursors[b].advance(&set, nkeys, ctx)?;
    }
    debug_assert_eq!(idx.len(), n);
    ctx.note_fallback(nruns as u32);

    // Identical work charges to the in-memory sort (the spill traffic is
    // ledgered separately), so profiles stay budget-invariant.
    let logn = (n.max(2) as f64).log2().round() as u64;
    prof.cpu_ops += n as u64 * logn * nkeys as u64;
    prof.seq_read_bytes += n as u64 * (key_width - 4);
    let out = rel.take(&idx);
    super::filter::charge_gather(rel, &out, n, prof);
    Ok(out)
}

/// Per-row order-preserving `u64` key encoder for the external sort.
struct RowEnc<'a> {
    col: &'a Column,
    /// Lexicographic rank per dictionary code (string keys only).
    rank: Option<Vec<u32>>,
    desc: bool,
}

impl<'a> RowEnc<'a> {
    fn new(col: &'a Column, desc: bool) -> Self {
        let rank = match col {
            Column::Str(d) => {
                let mut order: Vec<u32> = (0..d.cardinality() as u32).collect();
                order.sort_by(|&a, &b| d.decode(a).cmp(d.decode(b)));
                let mut rank = vec![0u32; d.cardinality()];
                for (r, &code) in order.iter().enumerate() {
                    rank[code as usize] = r as u32;
                }
                Some(rank)
            }
            _ => None,
        };
        RowEnc { col, rank, desc }
    }

    #[inline]
    fn at(&self, i: usize) -> u64 {
        let v = match self.col {
            Column::Int64(v) => enc_i64(v[i]),
            Column::Int32(v) => enc_i64(v[i] as i64),
            Column::Date(v) => enc_i64(v[i] as i64),
            Column::Decimal(v, _) => enc_i64(v[i]),
            Column::Bool(v) => v[i] as u64,
            Column::Float64(v) => enc_f64(v[i]),
            Column::Str(d) => {
                self.rank.as_ref().expect("built for Str")[d.codes()[i] as usize] as u64
            }
        };
        if self.desc {
            !v
        } else {
            v
        }
    }
}

/// Sign-flip: `u64` order equals `i64` order.
#[inline]
fn enc_i64(x: i64) -> u64 {
    (x as u64) ^ (1 << 63)
}

/// IEEE-754 total-order trick: `u64` order equals `f64::total_cmp` order
/// (negatives complemented, positives offset above them).
#[inline]
fn enc_f64(x: f64) -> u64 {
    let b = x.to_bits();
    if b >> 63 == 1 {
        !b
    } else {
        b | (1 << 63)
    }
}

fn prepare_key(col: &Column) -> KeyRep {
    match col {
        Column::Int64(v) => KeyRep::I64(v.clone()),
        Column::Int32(v) => KeyRep::I64(v.iter().map(|&x| x as i64).collect()),
        Column::Date(v) => KeyRep::I64(v.iter().map(|&x| x as i64).collect()),
        Column::Decimal(v, _) => KeyRep::I64(v.clone()),
        Column::Bool(v) => KeyRep::I64(v.iter().map(|&b| b as i64).collect()),
        Column::Float64(v) => KeyRep::F64(v.clone()),
        Column::Str(d) => {
            // Rank dictionary values lexicographically once.
            let mut order: Vec<u32> = (0..d.cardinality() as u32).collect();
            order.sort_by(|&a, &b| d.decode(a).cmp(d.decode(b)));
            let mut rank = vec![0u32; d.cardinality()];
            for (r, &code) in order.iter().enumerate() {
                rank[code as usize] = r as u32;
            }
            KeyRep::Rank(d.codes().iter().map(|&c| rank[c as usize]).collect())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use wimpi_storage::Value;

    fn rel() -> Relation {
        Relation::new(vec![
            (
                "name".into(),
                Arc::new(Column::Str(["beta", "alpha", "beta", "alpha"].into_iter().collect())),
            ),
            ("v".into(), Arc::new(Column::Int64(vec![2, 9, 1, 4]))),
        ])
        .unwrap()
    }

    fn sort(keys: Vec<SortKey>) -> Relation {
        let mut p = WorkProfile::new();
        exec_sort(&rel(), &keys, &mut p, &QueryContext::default()).unwrap()
    }

    #[test]
    fn single_key_ascending() {
        let out = sort(vec![SortKey::asc("v")]);
        assert_eq!(out.column("v").unwrap().as_i64().unwrap(), &[1, 2, 4, 9]);
    }

    #[test]
    fn single_key_descending() {
        let out = sort(vec![SortKey::desc("v")]);
        assert_eq!(out.column("v").unwrap().as_i64().unwrap(), &[9, 4, 2, 1]);
    }

    #[test]
    fn string_key_sorts_lexicographically() {
        let out = sort(vec![SortKey::asc("name"), SortKey::asc("v")]);
        assert_eq!(out.value(0, "name").unwrap(), Value::Str("alpha".into()));
        assert_eq!(out.column("v").unwrap().as_i64().unwrap(), &[4, 9, 1, 2]);
    }

    #[test]
    fn stability_preserves_input_order_on_ties() {
        let out = sort(vec![SortKey::asc("name")]);
        // betas keep their original relative order (v=2 before v=1)
        assert_eq!(out.column("v").unwrap().as_i64().unwrap(), &[9, 4, 2, 1]);
    }

    #[test]
    fn cost_charges_actual_key_widths() {
        // name is a Str key (4 B rank), v an Int64 key (8 B).
        let mut both = WorkProfile::new();
        let out = exec_sort(
            &rel(),
            &[SortKey::asc("name"), SortKey::asc("v")],
            &mut both,
            &QueryContext::default(),
        )
        .unwrap();
        let mut gather_only = WorkProfile::new();
        super::super::filter::charge_gather(&rel(), &out, 4, &mut gather_only);
        let key_bytes = both.seq_read_bytes - gather_only.seq_read_bytes;
        assert_eq!(key_bytes, 4 * (4 + 8), "4 rows × (rank 4 B + i64 8 B)");
        // log2 rounds to nearest: n=4 → exactly 2 levels, 2 keys.
        assert_eq!(both.cpu_ops - gather_only.cpu_ops, 4 * 2 * 2);
    }

    #[test]
    fn missing_key_errors() {
        let mut p = WorkProfile::new();
        assert!(
            exec_sort(&rel(), &[SortKey::asc("zzz")], &mut p, &QueryContext::default()).is_err()
        );
        assert!(exec_sort(&rel(), &[], &mut p, &QueryContext::default()).is_err());
    }

    #[test]
    fn budget_without_disk_still_errors_typed() {
        let mut p = WorkProfile::new();
        let err = exec_sort(&rel(), &[SortKey::asc("v")], &mut p, &QueryContext::with_budget(8))
            .unwrap_err();
        assert!(
            matches!(err, EngineError::ResourceExhausted { ref operator, .. } if operator == "sort"),
            "got {err:?}"
        );
    }

    /// Many duplicate keys (ties exercise the stability argument), negative
    /// and fractional floats (the total-order encoding), strings (rank
    /// encoding), and mixed ascending/descending directions.
    fn big_rel(n: i64) -> Relation {
        let words = ["delta", "alpha", "echo", "bravo", "charlie"];
        Relation::new(vec![
            ("g".into(), Arc::new(Column::Int64((0..n).map(|i| (i * 37) % 11 - 5).collect()))),
            (
                "f".into(),
                Arc::new(Column::Float64(
                    (0..n).map(|i| ((i * 73) % 19 - 9) as f64 * 0.37).collect(),
                )),
            ),
            ("s".into(), Arc::new(Column::Str((0..n).map(|i| words[(i % 5) as usize]).collect()))),
            ("v".into(), Arc::new(Column::Int64((0..n).collect()))),
        ])
        .unwrap()
    }

    #[test]
    fn spill_sort_is_bit_exact_across_budgets() {
        let rel = big_rel(2_000);
        let keys = [
            vec![SortKey::asc("g"), SortKey::desc("f")],
            vec![SortKey::desc("s"), SortKey::asc("g")],
            vec![SortKey::asc("f")],
        ];
        for ks in &keys {
            let mut bp = WorkProfile::new();
            let want = exec_sort(&rel, ks, &mut bp, &QueryContext::default()).unwrap();
            // Budgets chosen to force a few, ~8, and ~20 runs respectively
            // (all below every key set's n·key_width in-memory footprint).
            for budget in [20_000u64, 6_000, 2_000] {
                let disk = std::sync::Arc::new(wimpi_storage::SpillDisk::new(
                    wimpi_storage::SpillConfig::with_capacity(4 << 20),
                ));
                let ctx =
                    QueryContext::with_budget(budget).with_spill(std::sync::Arc::clone(&disk));
                let mut p = WorkProfile::new();
                let got = exec_sort(&rel, ks, &mut p, &ctx).unwrap();
                assert_eq!(got, want, "spill sort diverged at budget {budget} for {ks:?}");
                assert!(p.spilled_bytes > 0, "budget {budget} must engage the spill rung");
                assert_eq!(
                    WorkProfile { spilled_bytes: 0, ..p },
                    bp,
                    "work charges stay budget-invariant"
                );
                assert!(ctx.fallbacks() > 0);
                assert_eq!(disk.used(), 0, "all spill chunks freed");
                assert_eq!(ctx.used(), 0, "all reservations released");
            }
            // A budget below ~2·row_bytes·√n cannot hold one page per run in
            // the single-pass merge: the typed error survives the disk.
            let disk = std::sync::Arc::new(wimpi_storage::SpillDisk::new(
                wimpi_storage::SpillConfig::with_capacity(4 << 20),
            ));
            let ctx = QueryContext::with_budget(300).with_spill(std::sync::Arc::clone(&disk));
            let mut p = WorkProfile::new();
            let err = exec_sort(&rel, ks, &mut p, &ctx).unwrap_err();
            assert!(
                matches!(err, EngineError::ResourceExhausted { ref operator, .. } if operator == "sort"),
                "got {err:?}"
            );
            assert_eq!(disk.used(), 0, "the failed sort freed its chunks");
        }
    }

    #[test]
    fn spill_sort_survives_injected_faults_bit_exactly() {
        let rel = big_rel(2_000);
        let ks = vec![SortKey::asc("g"), SortKey::desc("f"), SortKey::asc("s")];
        let mut bp = WorkProfile::new();
        let want = exec_sort(&rel, &ks, &mut bp, &QueryContext::default()).unwrap();
        let cfg = wimpi_storage::SpillConfig::with_capacity(4 << 20)
            .with_faults(wimpi_storage::SpillFaults::every(42, 8))
            .with_max_read_retries(16);
        let disk = std::sync::Arc::new(wimpi_storage::SpillDisk::new(cfg));
        let ctx = QueryContext::with_budget(2_000).with_spill(std::sync::Arc::clone(&disk));
        let mut p = WorkProfile::new();
        let got = exec_sort(&rel, &ks, &mut p, &ctx).unwrap();
        assert_eq!(got, want, "faulted spill sort must stay bit-exact");
        assert!(p.spill_corruptions_detected > 0, "fault injection must fire");
        assert_eq!(disk.used(), 0);
    }
}
