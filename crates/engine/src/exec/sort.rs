//! Multi-key sorting.
//!
//! Keys are prepared as cheap orderable representations (dictionary codes are
//! replaced by lexicographic ranks), then row indices are sorted with a
//! stable comparison — ties preserve input order, keeping results
//! deterministic across runs and cluster merges.

use std::cmp::Ordering;

use crate::error::{EngineError, Result};
use crate::governor::QueryContext;
use crate::plan::SortKey;
use crate::relation::Relation;
use crate::stats::WorkProfile;
use wimpi_storage::Column;

/// One prepared sort key.
enum KeyRep {
    I64(Vec<i64>),
    F64(Vec<f64>),
    Rank(Vec<u32>),
}

impl KeyRep {
    fn cmp_rows(&self, a: usize, b: usize) -> Ordering {
        match self {
            KeyRep::I64(v) => v[a].cmp(&v[b]),
            KeyRep::F64(v) => v[a].total_cmp(&v[b]),
            KeyRep::Rank(v) => v[a].cmp(&v[b]),
        }
    }

    /// Bytes one comparison streams per row of this key: ranks are `u32`
    /// (4 B), integer/float keys are 8 B. Cost accounting must charge the
    /// width actually touched, or hwsim over-prices ORDER BY on dictionary
    /// columns by 2×.
    fn row_bytes(&self) -> u64 {
        match self {
            KeyRep::I64(_) | KeyRep::F64(_) => 8,
            KeyRep::Rank(_) => 4,
        }
    }
}

/// Sorts the relation by `keys` (most significant first).
///
/// Sorting has no Grace-style fallback — the key representations and the
/// index vector are the algorithm — so the whole buffer is reserved up
/// front and an impossible budget fails fast with `ResourceExhausted`.
pub fn exec_sort(
    rel: &Relation,
    keys: &[SortKey],
    prof: &mut WorkProfile,
    ctx: &QueryContext,
) -> Result<Relation> {
    if keys.is_empty() {
        return Err(EngineError::Plan("sort requires at least one key".to_string()));
    }
    let n = rel.num_rows();
    super::ensure_u32_indexable(n, "sort")?;
    // Key reps at their real widths (4 B ranks, 8 B ints/floats) plus the
    // 4 B/row index vector being sorted.
    let mut key_width = 4u64;
    for k in keys {
        key_width += rel.column(&k.column)?.data_type().sort_key_bytes();
    }
    let _guard = ctx.reserve(n as u64 * key_width, "sort")?;
    let mut reps = Vec::with_capacity(keys.len());
    for k in keys {
        let col = rel.column(&k.column)?;
        reps.push((prepare_key(col), k.descending));
    }
    ctx.checkpoint()?;
    let mut idx: Vec<u32> = (0..n as u32).collect();
    idx.sort_by(|&a, &b| {
        for (rep, desc) in &reps {
            let ord = rep.cmp_rows(a as usize, b as usize);
            if ord != Ordering::Equal {
                return if *desc { ord.reverse() } else { ord };
            }
        }
        Ordering::Equal
    });
    // n log n comparisons over all keys, plus the output gather. log2 is
    // rounded to nearest — truncation undercharged by up to one comparison
    // level per row (e.g. n=1000 paid for 9 of its ~10 levels).
    let logn = (n.max(2) as f64).log2().round() as u64;
    prof.cpu_ops += n as u64 * logn * keys.len() as u64;
    // Each comparison streams the key representations at their real widths:
    // 4 B dictionary ranks, 8 B integer/float keys.
    prof.seq_read_bytes += n as u64 * reps.iter().map(|(rep, _)| rep.row_bytes()).sum::<u64>();
    let out = rel.take(&idx);
    super::filter::charge_gather(rel, &out, n, prof);
    Ok(out)
}

fn prepare_key(col: &Column) -> KeyRep {
    match col {
        Column::Int64(v) => KeyRep::I64(v.clone()),
        Column::Int32(v) => KeyRep::I64(v.iter().map(|&x| x as i64).collect()),
        Column::Date(v) => KeyRep::I64(v.iter().map(|&x| x as i64).collect()),
        Column::Decimal(v, _) => KeyRep::I64(v.clone()),
        Column::Bool(v) => KeyRep::I64(v.iter().map(|&b| b as i64).collect()),
        Column::Float64(v) => KeyRep::F64(v.clone()),
        Column::Str(d) => {
            // Rank dictionary values lexicographically once.
            let mut order: Vec<u32> = (0..d.cardinality() as u32).collect();
            order.sort_by(|&a, &b| d.decode(a).cmp(d.decode(b)));
            let mut rank = vec![0u32; d.cardinality()];
            for (r, &code) in order.iter().enumerate() {
                rank[code as usize] = r as u32;
            }
            KeyRep::Rank(d.codes().iter().map(|&c| rank[c as usize]).collect())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use wimpi_storage::Value;

    fn rel() -> Relation {
        Relation::new(vec![
            (
                "name".into(),
                Arc::new(Column::Str(["beta", "alpha", "beta", "alpha"].into_iter().collect())),
            ),
            ("v".into(), Arc::new(Column::Int64(vec![2, 9, 1, 4]))),
        ])
        .unwrap()
    }

    fn sort(keys: Vec<SortKey>) -> Relation {
        let mut p = WorkProfile::new();
        exec_sort(&rel(), &keys, &mut p, &QueryContext::default()).unwrap()
    }

    #[test]
    fn single_key_ascending() {
        let out = sort(vec![SortKey::asc("v")]);
        assert_eq!(out.column("v").unwrap().as_i64().unwrap(), &[1, 2, 4, 9]);
    }

    #[test]
    fn single_key_descending() {
        let out = sort(vec![SortKey::desc("v")]);
        assert_eq!(out.column("v").unwrap().as_i64().unwrap(), &[9, 4, 2, 1]);
    }

    #[test]
    fn string_key_sorts_lexicographically() {
        let out = sort(vec![SortKey::asc("name"), SortKey::asc("v")]);
        assert_eq!(out.value(0, "name").unwrap(), Value::Str("alpha".into()));
        assert_eq!(out.column("v").unwrap().as_i64().unwrap(), &[4, 9, 1, 2]);
    }

    #[test]
    fn stability_preserves_input_order_on_ties() {
        let out = sort(vec![SortKey::asc("name")]);
        // betas keep their original relative order (v=2 before v=1)
        assert_eq!(out.column("v").unwrap().as_i64().unwrap(), &[9, 4, 2, 1]);
    }

    #[test]
    fn cost_charges_actual_key_widths() {
        // name is a Str key (4 B rank), v an Int64 key (8 B).
        let mut both = WorkProfile::new();
        let out = exec_sort(
            &rel(),
            &[SortKey::asc("name"), SortKey::asc("v")],
            &mut both,
            &QueryContext::default(),
        )
        .unwrap();
        let mut gather_only = WorkProfile::new();
        super::super::filter::charge_gather(&rel(), &out, 4, &mut gather_only);
        let key_bytes = both.seq_read_bytes - gather_only.seq_read_bytes;
        assert_eq!(key_bytes, 4 * (4 + 8), "4 rows × (rank 4 B + i64 8 B)");
        // log2 rounds to nearest: n=4 → exactly 2 levels, 2 keys.
        assert_eq!(both.cpu_ops - gather_only.cpu_ops, 4 * 2 * 2);
    }

    #[test]
    fn missing_key_errors() {
        let mut p = WorkProfile::new();
        assert!(
            exec_sort(&rel(), &[SortKey::asc("zzz")], &mut p, &QueryContext::default()).is_err()
        );
        assert!(exec_sort(&rel(), &[], &mut p, &QueryContext::default()).is_err());
    }
}
