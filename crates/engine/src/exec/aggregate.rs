//! Hash group-by aggregation.
//!
//! Group keys are arbitrary expressions; states are accumulated column-at-a-
//! time (each aggregate input is evaluated once as a full column, then
//! scattered into per-group states by group id). `avg` over an empty group
//! yields `0.0` — SQL would say NULL, but no reproduced query aggregates an
//! empty group (DESIGN.md §7).

use std::collections::{HashMap, HashSet};
use std::hash::Hash;
use std::sync::Arc;

use super::key_values;
use crate::error::{EngineError, Result};
use crate::eval::Evaluator;
use crate::plan::{AggExpr, AggFunc};
use crate::relation::Relation;
use crate::stats::WorkProfile;
use wimpi_storage::{Column, DataType, DictBuilder, StorageError, Value};

/// Executes a hash aggregation; empty `group_by` means one global group.
pub fn exec_aggregate(
    rel: &Relation,
    group_by: &[(crate::expr::Expr, String)],
    aggs: &[AggExpr],
    prof: &mut WorkProfile,
) -> Result<Relation> {
    let n = rel.num_rows();
    // 1. Evaluate group keys.
    let mut key_cols: Vec<(String, Arc<Column>)> = Vec::with_capacity(group_by.len());
    for (e, name) in group_by {
        let c = Evaluator::new(rel, prof).eval(e)?;
        key_cols.push((name.clone(), c));
    }
    let encoded: Vec<Vec<i64>> =
        key_cols.iter().map(|(_, c)| key_values(c)).collect::<Result<_>>()?;

    // 2. Assign group ids.
    let (gids, first_rows) = match encoded.len() {
        0 => (vec![0u32; n], if n > 0 { vec![0u32] } else { vec![] }),
        1 => assign_groups(n, |i| encoded[0][i]),
        2 => assign_groups(n, |i| (encoded[0][i], encoded[1][i])),
        _ => assign_groups(n, |i| encoded.iter().map(|k| k[i]).collect::<Vec<_>>()),
    };
    let ngroups = if group_by.is_empty() { 1 } else { first_rows.len() };

    prof.cpu_ops += n as u64 * (1 + aggs.len() as u64);
    prof.rand_accesses += n as u64;
    prof.hash_bytes += ngroups as u64 * 32 * (group_by.len() + aggs.len()).max(1) as u64;

    // 3. Accumulate each aggregate.
    let mut out_fields: Vec<(String, Arc<Column>)> =
        key_cols.iter().map(|(name, c)| (name.clone(), Arc::new(c.take(&first_rows)))).collect();
    for agg in aggs {
        let col = accumulate(rel, agg, &gids, ngroups, prof)?;
        out_fields.push((agg.name.clone(), Arc::new(col)));
    }
    prof.seq_write_bytes += out_fields.iter().map(|(_, c)| c.stream_bytes() as u64).sum::<u64>();
    Relation::new(out_fields)
}

fn assign_groups<K: Hash + Eq>(n: usize, key: impl Fn(usize) -> K) -> (Vec<u32>, Vec<u32>) {
    let mut map: HashMap<K, u32> = HashMap::new();
    let mut gids = Vec::with_capacity(n);
    let mut first_rows = Vec::new();
    for i in 0..n {
        let gid = *map.entry(key(i)).or_insert_with(|| {
            first_rows.push(i as u32);
            (first_rows.len() - 1) as u32
        });
        gids.push(gid);
    }
    (gids, first_rows)
}

fn accumulate(
    rel: &Relation,
    agg: &AggExpr,
    gids: &[u32],
    ngroups: usize,
    prof: &mut WorkProfile,
) -> Result<Column> {
    let input = match (&agg.expr, agg.func) {
        (None, AggFunc::CountStar) => None,
        (None, f) => return Err(EngineError::Plan(format!("{f:?} requires an input expression"))),
        (Some(e), _) => Some(Evaluator::new(rel, prof).eval(e)?),
    };
    match agg.func {
        AggFunc::CountStar => {
            let mut counts = vec![0i64; ngroups];
            for &g in gids {
                counts[g as usize] += 1;
            }
            Ok(Column::Int64(counts))
        }
        AggFunc::CountIf => {
            let col = input.expect("checked above");
            let mask = col.as_bool()?;
            let mut counts = vec![0i64; ngroups];
            for (i, &g) in gids.iter().enumerate() {
                counts[g as usize] += i64::from(mask[i]);
            }
            Ok(Column::Int64(counts))
        }
        AggFunc::CountDistinct => {
            let col = input.expect("checked above");
            let enc = key_values(&col)?;
            let mut sets: Vec<HashSet<i64>> = vec![HashSet::new(); ngroups];
            for (i, &g) in gids.iter().enumerate() {
                sets[g as usize].insert(enc[i]);
            }
            prof.rand_accesses += gids.len() as u64;
            Ok(Column::Int64(sets.into_iter().map(|s| s.len() as i64).collect()))
        }
        AggFunc::Sum => {
            let col = input.expect("checked above");
            match &*col {
                Column::Decimal(v, s) => {
                    let mut acc = vec![0i128; ngroups];
                    for (i, &g) in gids.iter().enumerate() {
                        acc[g as usize] += v[i] as i128;
                    }
                    let out: Vec<i64> = acc
                        .into_iter()
                        .map(|x| i64::try_from(x).map_err(|_| StorageError::DecimalOverflow))
                        .collect::<std::result::Result<_, _>>()?;
                    Ok(Column::Decimal(out, *s))
                }
                Column::Int64(v) => {
                    let mut acc = vec![0i64; ngroups];
                    for (i, &g) in gids.iter().enumerate() {
                        acc[g as usize] += v[i];
                    }
                    Ok(Column::Int64(acc))
                }
                Column::Int32(v) => {
                    let mut acc = vec![0i64; ngroups];
                    for (i, &g) in gids.iter().enumerate() {
                        acc[g as usize] += v[i] as i64;
                    }
                    Ok(Column::Int64(acc))
                }
                Column::Float64(v) => {
                    let mut acc = vec![0f64; ngroups];
                    for (i, &g) in gids.iter().enumerate() {
                        acc[g as usize] += v[i];
                    }
                    Ok(Column::Float64(acc))
                }
                other => Err(EngineError::Plan(format!(
                    "sum over non-numeric column of type {}",
                    other.data_type()
                ))),
            }
        }
        AggFunc::Avg => {
            let col = input.expect("checked above");
            let vals = as_f64_vec(&col)?;
            let mut sum = vec![0f64; ngroups];
            let mut cnt = vec![0i64; ngroups];
            for (i, &g) in gids.iter().enumerate() {
                sum[g as usize] += vals[i];
                cnt[g as usize] += 1;
            }
            Ok(Column::Float64(
                sum.iter()
                    .zip(&cnt)
                    .map(|(s, &c)| if c == 0 { 0.0 } else { s / c as f64 })
                    .collect(),
            ))
        }
        AggFunc::Min | AggFunc::Max => {
            let col = input.expect("checked above");
            let want_min = agg.func == AggFunc::Min;
            let mut best: Vec<Option<Value>> = vec![None; ngroups];
            for (i, &g) in gids.iter().enumerate() {
                let v = col.value(i);
                let slot = &mut best[g as usize];
                let replace = match slot {
                    None => true,
                    Some(cur) => {
                        let ord = v.total_cmp(cur);
                        if want_min {
                            ord.is_lt()
                        } else {
                            ord.is_gt()
                        }
                    }
                };
                if replace {
                    *slot = Some(v);
                }
            }
            column_from_values(col.data_type(), best)
        }
    }
}

fn as_f64_vec(col: &Column) -> Result<Vec<f64>> {
    Ok(match col {
        Column::Float64(v) => v.clone(),
        Column::Int64(v) => v.iter().map(|&x| x as f64).collect(),
        Column::Int32(v) => v.iter().map(|&x| x as f64).collect(),
        Column::Decimal(v, s) => {
            let div = 10f64.powi(*s as i32);
            v.iter().map(|&x| x as f64 / div).collect()
        }
        other => {
            return Err(EngineError::Plan(format!(
                "avg over non-numeric column of type {}",
                other.data_type()
            )))
        }
    })
}

/// Builds a typed column from per-group optional values (None → type default,
/// only reachable for empty global groups).
fn column_from_values(dtype: DataType, vals: Vec<Option<Value>>) -> Result<Column> {
    match dtype {
        DataType::Int64 => Ok(Column::Int64(
            vals.into_iter().map(|v| v.and_then(|v| v.as_i64()).unwrap_or(0)).collect(),
        )),
        DataType::Int32 => Ok(Column::Int32(
            vals.into_iter().map(|v| v.and_then(|v| v.as_i64()).unwrap_or(0) as i32).collect(),
        )),
        DataType::Float64 => Ok(Column::Float64(
            vals.into_iter().map(|v| v.and_then(|v| v.as_f64()).unwrap_or(0.0)).collect(),
        )),
        DataType::Decimal(s) => Ok(Column::Decimal(
            vals.into_iter()
                .map(|v| match v {
                    Some(Value::Dec(d)) => d.mantissa(),
                    _ => 0,
                })
                .collect(),
            s,
        )),
        DataType::Date => Ok(Column::Date(
            vals.into_iter()
                .map(|v| match v {
                    Some(Value::Date(d)) => d.0,
                    _ => 0,
                })
                .collect(),
        )),
        DataType::Utf8 => {
            let mut b = DictBuilder::with_capacity(vals.len());
            for v in vals {
                match v {
                    Some(Value::Str(s)) => b.push(&s),
                    _ => b.push(""),
                }
            }
            Ok(Column::Str(b.finish()))
        }
        DataType::Bool => Ok(Column::Bool(
            vals.into_iter().map(|v| matches!(v, Some(Value::Bool(true)))).collect(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::col;

    fn rel() -> Relation {
        Relation::new(vec![
            ("flag".into(), Arc::new(Column::Str(["A", "B", "A", "A"].into_iter().collect()))),
            ("qty".into(), Arc::new(Column::Decimal(vec![100, 200, 300, 400], 2))),
            ("f".into(), Arc::new(Column::Float64(vec![1.0, 2.0, 3.0, 4.0]))),
            ("b".into(), Arc::new(Column::Bool(vec![true, false, false, true]))),
        ])
        .unwrap()
    }

    fn agg(group: Vec<(crate::expr::Expr, &str)>, aggs: Vec<AggExpr>) -> Relation {
        let group: Vec<(crate::expr::Expr, String)> =
            group.into_iter().map(|(e, n)| (e, n.to_string())).collect();
        let mut p = WorkProfile::new();
        exec_aggregate(&rel(), &group, &aggs, &mut p).unwrap()
    }

    #[test]
    fn grouped_sum_and_count() {
        let out = agg(
            vec![(col("flag"), "flag")],
            vec![AggExpr::sum(col("qty"), "s"), AggExpr::count_star("n")],
        );
        assert_eq!(out.num_rows(), 2);
        // group order = first appearance: A then B
        assert_eq!(out.value(0, "flag").unwrap(), Value::Str("A".into()));
        let (m, s) = out.column("s").unwrap().as_decimal().unwrap();
        assert_eq!((m[0], s), (800, 2)); // 1+3+4 = 8.00
        assert_eq!(m[1], 200);
        assert_eq!(out.column("n").unwrap().as_i64().unwrap(), &[3, 1]);
    }

    #[test]
    fn global_aggregates() {
        let out = agg(
            vec![],
            vec![
                AggExpr::avg(col("qty"), "a"),
                AggExpr::min(col("qty"), "lo"),
                AggExpr::max(col("qty"), "hi"),
            ],
        );
        assert_eq!(out.num_rows(), 1);
        assert!((out.column("a").unwrap().as_f64().unwrap()[0] - 2.5).abs() < 1e-9);
        assert_eq!(out.column("lo").unwrap().as_decimal().unwrap().0, &[100]);
        assert_eq!(out.column("hi").unwrap().as_decimal().unwrap().0, &[400]);
    }

    #[test]
    fn count_if_counts_true() {
        let out = agg(vec![(col("flag"), "g")], vec![AggExpr::count_if(col("b"), "n")]);
        assert_eq!(out.column("n").unwrap().as_i64().unwrap(), &[2, 0]);
    }

    #[test]
    fn count_distinct() {
        let out = agg(vec![], vec![AggExpr::count_distinct(col("flag"), "d")]);
        assert_eq!(out.column("d").unwrap().as_i64().unwrap(), &[2]);
    }

    #[test]
    fn min_max_on_strings() {
        let out =
            agg(vec![], vec![AggExpr::min(col("flag"), "lo"), AggExpr::max(col("flag"), "hi")]);
        assert_eq!(out.value(0, "lo").unwrap(), Value::Str("A".into()));
        assert_eq!(out.value(0, "hi").unwrap(), Value::Str("B".into()));
    }

    #[test]
    fn empty_input_global_group() {
        let empty = Relation::new(vec![("x".into(), Arc::new(Column::Int64(vec![])))]).unwrap();
        let mut p = WorkProfile::new();
        let out = exec_aggregate(
            &empty,
            &[],
            &[AggExpr::count_star("n"), AggExpr::sum(col("x"), "s")],
            &mut p,
        )
        .unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.column("n").unwrap().as_i64().unwrap(), &[0]);
        assert_eq!(out.column("s").unwrap().as_i64().unwrap(), &[0]);
    }

    #[test]
    fn sum_float() {
        let out = agg(vec![(col("flag"), "g")], vec![AggExpr::sum(col("f"), "s")]);
        let f = out.column("s").unwrap().as_f64().unwrap();
        assert!((f[0] - 8.0).abs() < 1e-9);
        assert!((f[1] - 2.0).abs() < 1e-9);
    }
}
