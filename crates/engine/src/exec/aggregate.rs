//! Hash group-by aggregation, morsel-driven.
//!
//! Group keys are arbitrary expressions; states are accumulated column-at-a-
//! time. Each morsel builds a thread-local table (its own key→gid map plus
//! per-aggregate state vectors); the partials are then merged **in morsel
//! order**, so the global group order is exactly the serial first-appearance
//! order and every float reduction tree depends only on the data and the
//! morsel size — never on the thread count (bit-exact determinism; see
//! `exec::parallel`). Decimal sums accumulate in `i128`, which is exact and
//! order-free; `avg` over fixed-point inputs (decimal/int) likewise sums
//! mantissas in `i128` and divides once at the end, so its value is
//! independent of morsel boundaries too — which is what lets the fused
//! executor (DESIGN.md §13) fold rows in base-table morsel order and still
//! produce bit-identical averages. `avg` over an empty group yields `0.0` —
//! SQL would say NULL, but no reproduced query aggregates an empty group
//! (DESIGN.md §7).

use std::borrow::Cow;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use super::join::MAX_GRACE_PARTS;
use super::parallel::{morsel_ranges, run_morsels_spanned, EngineConfig};
use super::{ensure_u32_indexable, key_values, partition_of};
use crate::error::{EngineError, Result};
use crate::eval::Evaluator;
use crate::governor::QueryContext;
use crate::plan::{AggExpr, AggFunc};
use crate::relation::Relation;
use crate::stats::WorkProfile;
use wimpi_obs::{Span, Tracer};
use wimpi_storage::{Column, DataType, DictBuilder, StorageError, Value};

/// Executes a hash aggregation; empty `group_by` means one global group.
/// When tracing, a `partials` stage span (with per-morsel children) covering
/// the morsel-local tables and their in-order merge is attached to the open
/// aggregate span.
pub fn exec_aggregate(
    rel: &Relation,
    group_by: &[(crate::expr::Expr, String)],
    aggs: &[AggExpr],
    prof: &mut WorkProfile,
    cfg: &EngineConfig,
    tracer: &Tracer,
    ctx: &QueryContext,
) -> Result<Relation> {
    let n = rel.num_rows();
    ensure_u32_indexable(n, "aggregate")?;
    // 1. Evaluate group keys and aggregate inputs as full columns (their
    //    element-wise primitives parallelize inside the evaluator).
    let mut key_cols: Vec<(String, Arc<Column>)> = Vec::with_capacity(group_by.len());
    for (e, name) in group_by {
        let c = Evaluator::with_config(rel, prof, *cfg).eval(e)?;
        key_cols.push((name.clone(), c));
    }
    let encoded: Vec<Vec<i64>> =
        key_cols.iter().map(|(_, c)| key_values(c.as_ref())).collect::<Result<_>>()?;

    let mut input_cols: Vec<Option<Arc<Column>>> = Vec::with_capacity(aggs.len());
    for agg in aggs {
        input_cols.push(match (&agg.expr, agg.func) {
            (None, AggFunc::CountStar) => None,
            (None, f) => {
                return Err(EngineError::Plan(format!("{f:?} requires an input expression")))
            }
            (Some(e), _) => Some(Evaluator::with_config(rel, prof, *cfg).eval(e)?),
        });
    }
    let inputs: Vec<AggInput> = aggs
        .iter()
        .zip(&input_cols)
        .map(|(agg, c)| AggInput::bind(agg.func, c.as_deref()))
        .collect::<Result<_>>()?;

    // 2. Morsel-local partial tables, then an in-order merge.
    let sink = tracer.morsel_sink();
    let stage_started = tracer.is_enabled().then(std::time::Instant::now);
    let ranges = morsel_ranges(n, cfg.morsel_rows);
    let partials = run_morsels_spanned(cfg, &ranges, &sink, |_, r| {
        let mut p = MorselAgg::new(&inputs);
        if ctx.interrupted() {
            return p;
        }
        for i in r {
            p.push_row(i, &encoded, &inputs);
        }
        p
    });
    ctx.checkpoint()?;

    // The coordinator merge reserves one `width`-byte table entry per
    // distinct group (the same constant the work profile charges to
    // `hash_bytes`). When the table would exceed the query budget the merge
    // is abandoned and redone Grace-style: partition the groups by key hash
    // and build one bounded table per partition, sequentially.
    let width = 32 * (group_by.len() + aggs.len()).max(1) as u64;
    let empty_states = || inputs.iter().map(AggState::empty_like).collect();
    let (first_rows, mut gstates) = match merge_partials(partials, &empty_states, width, ctx) {
        Some(table) => table,
        // Out-of-core rung (DESIGN.md §16): when even Grace's doubling cap
        // cannot fit a partition's table, stage partition routing on the
        // spill disk and keep doubling. Only the budget failure escalates
        // there; other errors pass through untouched.
        None => match grace_aggregate(&ranges, &encoded, &inputs, width, ctx) {
            Ok(table) => table,
            Err(EngineError::ResourceExhausted { .. }) if ctx.spill().is_some() => {
                spill_aggregate(&ranges, &encoded, &inputs, width, ctx, prof)?
            }
            Err(e) => return Err(e),
        },
    };
    let ngroups = if group_by.is_empty() { 1 } else { first_rows.len() };
    for st in &mut gstates {
        st.grow_to(ngroups);
    }
    if let Some(started) = stage_started {
        let mut stage = Span::leaf("partials", "");
        stage.rows_in = n as u64;
        stage.rows_out = ngroups as u64;
        stage.wall_ns = started.elapsed().as_nanos() as u64;
        stage.children = sink.into_spans();
        tracer.attach(stage);
    }

    prof.cpu_ops += n as u64 * (1 + aggs.len() as u64);
    prof.rand_accesses += n as u64;
    prof.hash_bytes += ngroups as u64 * 32 * (group_by.len() + aggs.len()).max(1) as u64;
    for agg in aggs {
        if agg.func == AggFunc::CountDistinct {
            prof.rand_accesses += n as u64;
        }
    }

    // 3. Materialize output columns.
    let mut out_fields: Vec<(String, Arc<Column>)> =
        key_cols.iter().map(|(name, c)| (name.clone(), Arc::new(c.take(&first_rows)))).collect();
    for (agg, st) in aggs.iter().zip(gstates) {
        out_fields.push((agg.name.clone(), Arc::new(st.finish()?)));
    }
    prof.seq_write_bytes += out_fields.iter().map(|(_, c)| c.stream_bytes() as u64).sum::<u64>();
    Relation::new(out_fields)
}

/// Merges the morsel partials into one global table (in morsel order — see
/// the module doc), growing a reservation by `width` bytes per distinct
/// group. Returns `None` as soon as a new group no longer fits the query
/// budget; the caller then takes the Grace-style partitioned path (the fused
/// executor instead re-runs the pipeline through the materializing engine).
/// The reservation is released on return either way: the table's peak is
/// already recorded, and what survives the merge is the output itself.
pub(super) fn merge_partials(
    partials: Vec<MorselAgg>,
    empty_states: &dyn Fn() -> Vec<AggState>,
    width: u64,
    ctx: &QueryContext,
) -> Option<(Vec<u32>, Vec<AggState>)> {
    let mut guard = ctx.try_reserve(0)?;
    let mut gmap: KeyMap = KeyMap::default();
    let mut first_rows: Vec<u32> = Vec::new();
    let mut gstates: Vec<AggState> = empty_states();
    for partial in partials {
        let mut gid_map: Vec<u32> = Vec::with_capacity(partial.keys.len());
        for (k, fr) in partial.keys.into_iter().zip(partial.first_rows) {
            match gmap.get(&k) {
                Some(&g) => gid_map.push(g),
                None => {
                    if !guard.grow(width) {
                        return None;
                    }
                    let g = first_rows.len() as u32;
                    gmap.insert(k, g);
                    first_rows.push(fr);
                    gid_map.push(g);
                }
            }
        }
        for (gst, lst) in gstates.iter_mut().zip(partial.states) {
            gst.grow_to(first_rows.len());
            gst.merge_from(lst, &gid_map);
        }
    }
    Some((first_rows, gstates))
}

/// Grace-style budget fallback: partition the groups by key hash and run the
/// aggregation once per partition, sequentially, each against its own
/// reservation that is released before the next partition starts. Doubles
/// the partition count until every partition's table fits the budget.
///
/// Bit-exactness: every row of a group lands in the same partition, so each
/// group's accumulator sees exactly the per-morsel partial values of the
/// unpartitioned merge, folded in the same morsel order. Distinct groups
/// have distinct first rows, so sorting the stitched groups by first row
/// reproduces the unpartitioned first-appearance group order exactly.
fn grace_aggregate(
    ranges: &[std::ops::Range<usize>],
    encoded: &[Vec<i64>],
    inputs: &[AggInput],
    width: u64,
    ctx: &QueryContext,
) -> Result<(Vec<u32>, Vec<AggState>)> {
    let mut nparts = 2usize;
    // The doubling below restarts the whole attempt (`continue 'attempt`),
    // so mutating the inner `0..nparts` bound is the point, not a bug.
    #[allow(clippy::mut_range_bound)]
    'attempt: loop {
        // (first row, partition, local gid) of every group, in discovery
        // order, plus each partition's accumulated states.
        let mut order: Vec<(u32, u32, u32)> = Vec::new();
        let mut part_states: Vec<Vec<AggState>> = Vec::with_capacity(nparts);
        let mut part_counts: Vec<usize> = Vec::with_capacity(nparts);
        for p in 0..nparts {
            ctx.checkpoint()?;
            let mut guard = ctx.try_reserve(0).expect("an empty reservation always fits");
            let mut gmap: KeyMap = KeyMap::default();
            let mut first_rows: Vec<u32> = Vec::new();
            let mut gstates: Vec<AggState> = inputs.iter().map(AggState::empty_like).collect();
            for r in ranges {
                // Re-scan the morsel restricted to this partition's rows:
                // within a morsel a group's rows are the same rows the
                // unpartitioned partial saw, so its local sum is identical.
                let mut partial = MorselAgg::new(inputs);
                for i in r.clone() {
                    if partition_of(&key_at(encoded, i), nparts) == p {
                        partial.push_row(i, encoded, inputs);
                    }
                }
                let mut gid_map: Vec<u32> = Vec::with_capacity(partial.keys.len());
                for (k, fr) in partial.keys.into_iter().zip(partial.first_rows) {
                    match gmap.get(&k) {
                        Some(&g) => gid_map.push(g),
                        None => {
                            if !guard.grow(width) {
                                if first_rows.is_empty() || nparts >= MAX_GRACE_PARTS {
                                    // A partition of one group cannot shrink
                                    // further, and past the doubling cap the
                                    // budget is declared impossible.
                                    return Err(EngineError::ResourceExhausted {
                                        requested: guard.bytes() + width,
                                        budget: ctx.budget(),
                                        operator: "aggregate".to_string(),
                                    });
                                }
                                nparts *= 2;
                                continue 'attempt;
                            }
                            let g = first_rows.len() as u32;
                            gmap.insert(k, g);
                            first_rows.push(fr);
                            gid_map.push(g);
                        }
                    }
                }
                for (gst, lst) in gstates.iter_mut().zip(partial.states) {
                    gst.grow_to(first_rows.len());
                    gst.merge_from(lst, &gid_map);
                }
            }
            for (lg, &fr) in first_rows.iter().enumerate() {
                order.push((fr, p as u32, lg as u32));
            }
            part_counts.push(first_rows.len());
            part_states.push(gstates);
            // `guard` drops here: the partition's table scratch is released
            // before the next partition reserves its own.
        }
        // Every partition fit. Stitch the global table in first-appearance
        // order; folding each partition total into a fresh accumulator is
        // exact (0 + x, None → x, set ∪ ∅).
        order.sort_unstable_by_key(|&(fr, _, _)| fr);
        let first_rows: Vec<u32> = order.iter().map(|&(fr, _, _)| fr).collect();
        let mut gid_maps: Vec<Vec<u32>> = part_counts.iter().map(|&c| vec![0u32; c]).collect();
        for (g, &(_, p, lg)) in order.iter().enumerate() {
            gid_maps[p as usize][lg as usize] = g as u32;
        }
        let mut gstates: Vec<AggState> = inputs.iter().map(AggState::empty_like).collect();
        for st in &mut gstates {
            st.grow_to(first_rows.len());
        }
        for (p, pstates) in part_states.into_iter().enumerate() {
            for (gst, lst) in gstates.iter_mut().zip(pstates) {
                gst.merge_from(lst, &gid_maps[p]);
            }
        }
        ctx.note_fallback(nparts as u32);
        return Ok((first_rows, gstates));
    }
}

/// The spill rung past the Grace aggregate (DESIGN.md §16): resume the
/// fan-out doubling beyond `MAX_GRACE_PARTS`, staging each partition's
/// `(row id, key slots)` records on the spill disk instead of re-scanning
/// every morsel once per partition. Read-back (checksum-verified, fault-
/// retried) rebuilds the per-morsel partials — rows were staged in
/// ascending row order and morsel boundaries are recovered from the fixed
/// morsel stride — and merges them in morsel order, which is exactly the
/// fold the unpartitioned merge performs; the Grace bit-exactness argument
/// then applies verbatim. Aggregate *input* values are still read from the
/// resident columns by row id; the partition routing (row ids + keys) is
/// what round-trips through the disk.
fn spill_aggregate(
    ranges: &[std::ops::Range<usize>],
    encoded: &[Vec<i64>],
    inputs: &[AggInput],
    width: u64,
    ctx: &QueryContext,
    prof: &mut WorkProfile,
) -> Result<(Vec<u32>, Vec<AggState>)> {
    let disk = Arc::clone(ctx.spill().expect("spill_aggregate requires a disk"));
    let before = disk.counters();
    let result = spill_aggregate_inner(ranges, encoded, inputs, width, ctx);
    // Ledger even when the rung escalates: DiskFull bytes were still priced.
    super::spill::note_spill_delta(prof, disk.counters().delta_since(&before));
    result
}

fn spill_aggregate_inner(
    ranges: &[std::ops::Range<usize>],
    encoded: &[Vec<i64>],
    inputs: &[AggInput],
    width: u64,
    ctx: &QueryContext,
) -> Result<(Vec<u32>, Vec<AggState>)> {
    use super::spill::{
        encode_spill_row, spill_row_bytes, SpillRowReader, SpillSet, MAX_SPILL_PARTS,
    };

    let n = ranges.last().map(|r| r.end).unwrap_or(0);
    let nkeys = encoded.len();
    let morsel_len = ranges.first().map(|r| r.len()).unwrap_or(1).max(1);
    let mut nparts = MAX_GRACE_PARTS * 2;
    // As in `grace_aggregate`, the doubling restarts the whole attempt.
    #[allow(clippy::mut_range_bound)]
    'attempt: loop {
        // Stage every row's (row id, key slots), partitioned by key hash, in
        // ascending row order. `SpillSet` frees the chunks on every exit —
        // including the `continue 'attempt` restart below.
        let mut set = SpillSet::new(ctx, "aggregate").expect("disk attached");
        let mut bufs: Vec<Vec<u8>> = vec![Vec::new(); nparts];
        for i in 0..n {
            let p = partition_of(&key_at(encoded, i), nparts);
            encode_spill_row(&mut bufs[p], i as u32, encoded, i);
        }
        ctx.track((n * spill_row_bytes(nkeys)) as u64);
        let mut chunks: Vec<Option<usize>> = vec![None; nparts];
        for (p, buf) in bufs.iter_mut().enumerate() {
            if !buf.is_empty() {
                chunks[p] = Some(set.write(buf)?);
                *buf = Vec::new();
            }
        }
        drop(bufs);

        let mut order: Vec<(u32, u32, u32)> = Vec::new();
        let mut part_states: Vec<Vec<AggState>> = Vec::with_capacity(nparts);
        let mut part_counts: Vec<usize> = Vec::with_capacity(nparts);
        for (p, chunk) in chunks.iter().enumerate() {
            ctx.checkpoint()?;
            let mut guard = ctx.try_reserve(0).expect("an empty reservation always fits");
            let mut gmap: KeyMap = KeyMap::default();
            let mut first_rows: Vec<u32> = Vec::new();
            let mut gstates: Vec<AggState> = inputs.iter().map(AggState::empty_like).collect();
            if let Some(ci) = *chunk {
                let bytes = set.read(ci)?;
                let mut rd = SpillRowReader::new(&bytes, nkeys);
                let mut pending = rd.next().map(|(r, s)| (r, s.to_vec()));
                while let Some((row0, _)) = &pending {
                    // One morsel's worth of this partition's rows → one
                    // partial, merged immediately (morsel order).
                    let mi = *row0 as usize / morsel_len;
                    let mut partial = MorselAgg::new(inputs);
                    while let Some((row, slots)) = pending.take() {
                        if row as usize / morsel_len != mi {
                            pending = Some((row, slots));
                            break;
                        }
                        let g = partial.group_of(Key::from_row(&slots), row);
                        for (st, input) in partial.states.iter_mut().zip(inputs) {
                            st.push(g as usize, row as usize, input);
                        }
                        pending = rd.next().map(|(r, s)| (r, s.to_vec()));
                    }
                    let mut gid_map: Vec<u32> = Vec::with_capacity(partial.keys.len());
                    for (k, fr) in partial.keys.into_iter().zip(partial.first_rows) {
                        match gmap.get(&k) {
                            Some(&g) => gid_map.push(g),
                            None => {
                                if !guard.grow(width) {
                                    if first_rows.is_empty() || nparts >= MAX_SPILL_PARTS {
                                        // One group per partition cannot
                                        // shrink further; past the cap the
                                        // budget is declared impossible.
                                        return Err(EngineError::ResourceExhausted {
                                            requested: guard.bytes() + width,
                                            budget: ctx.budget(),
                                            operator: "aggregate".to_string(),
                                        });
                                    }
                                    nparts *= 2;
                                    continue 'attempt;
                                }
                                let g = first_rows.len() as u32;
                                gmap.insert(k, g);
                                first_rows.push(fr);
                                gid_map.push(g);
                            }
                        }
                    }
                    for (gst, lst) in gstates.iter_mut().zip(partial.states) {
                        gst.grow_to(first_rows.len());
                        gst.merge_from(lst, &gid_map);
                    }
                }
            }
            for (lg, &fr) in first_rows.iter().enumerate() {
                order.push((fr, p as u32, lg as u32));
            }
            part_counts.push(first_rows.len());
            part_states.push(gstates);
        }
        // Stitch in first-appearance order — identical to `grace_aggregate`.
        order.sort_unstable_by_key(|&(fr, _, _)| fr);
        let first_rows: Vec<u32> = order.iter().map(|&(fr, _, _)| fr).collect();
        let mut gid_maps: Vec<Vec<u32>> = part_counts.iter().map(|&c| vec![0u32; c]).collect();
        for (g, &(_, p, lg)) in order.iter().enumerate() {
            gid_maps[p as usize][lg as usize] = g as u32;
        }
        let mut gstates: Vec<AggState> = inputs.iter().map(AggState::empty_like).collect();
        for st in &mut gstates {
            st.grow_to(first_rows.len());
        }
        for (p, pstates) in part_states.into_iter().enumerate() {
            for (gst, lst) in gstates.iter_mut().zip(pstates) {
                gst.merge_from(lst, &gid_maps[p]);
            }
        }
        ctx.note_fallback(nparts as u32);
        return Ok((first_rows, gstates));
    }
}

/// Deterministic multiply-xor hasher (the FxHash construction) for the
/// group maps: the default SipHash spends more per-row time hashing a
/// two-slot key than the aggregation spends accumulating it. Iteration
/// order of the maps is never observed — group order always comes from
/// `first_rows` / insertion-ordered `keys` — so swapping the hasher cannot
/// change any result.
#[derive(Clone, Default)]
struct FxBuild;

impl std::hash::BuildHasher for FxBuild {
    type Hasher = FxHasher;

    fn build_hasher(&self) -> FxHasher {
        FxHasher(0)
    }
}

struct FxHasher(u64);

impl FxHasher {
    #[inline]
    fn add(&mut self, v: u64) {
        self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(0x517c_c1b7_2722_0a95);
    }
}

impl std::hash::Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(b as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64)
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64)
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v)
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64)
    }

    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.add(v as u64)
    }
}

type KeyMap = HashMap<Key, u32, FxBuild>;

/// A group key: the common 0/1/2-column cases avoid heap allocation. Keys
/// hold `key_values`-encoded slots, so the fused executor's VM (which emits
/// the same encoding) builds identical keys from its per-morsel buffers.
#[derive(Clone, Hash, PartialEq, Eq)]
pub(super) enum Key {
    Unit,
    One(i64),
    Two(i64, i64),
    Many(Vec<i64>),
}

impl Key {
    /// Builds a key from one row of column-major encoded slots.
    #[inline]
    pub(super) fn from_slots(slots: &[Vec<i64>], i: usize) -> Key {
        key_at(slots, i)
    }

    /// Builds a key from one row-major slot slice (a decoded spill row).
    /// Must agree with [`Key::from_slots`] for the partition assignment and
    /// chain layout of the spilled rungs to match.
    #[inline]
    pub(super) fn from_row(slots: &[i64]) -> Key {
        match slots.len() {
            0 => Key::Unit,
            1 => Key::One(slots[0]),
            2 => Key::Two(slots[0], slots[1]),
            _ => Key::Many(slots.to_vec()),
        }
    }
}

#[inline]
fn key_at(encoded: &[Vec<i64>], i: usize) -> Key {
    match encoded.len() {
        0 => Key::Unit,
        1 => Key::One(encoded[0][i]),
        2 => Key::Two(encoded[0][i], encoded[1][i]),
        _ => Key::Many(encoded.iter().map(|k| k[i]).collect()),
    }
}

/// One aggregate's input, typed once up front so the per-row hot loop is a
/// slice index, not a `Column` match.
enum AggInput<'c> {
    None,
    Mask(&'c [bool]),
    Encoded(Vec<i64>),
    Dec(&'c [i64], u8),
    I64(&'c [i64]),
    I32(&'c [i32]),
    SumF64(Vec<f64>),
    /// `avg` over fixed-point inputs: mantissas (scale 0 for integers) summed
    /// exactly in `i128`, divided once at finish. Order-free, so the fused
    /// executor reproduces it bit-exactly whatever the fold boundaries.
    AvgFixed(Cow<'c, [i64]>, u8),
    /// `avg` over a float column: per-row f64 accumulation (morsel-order
    /// deterministic like every float sum; the fused path falls back).
    Avg(Vec<f64>),
    MinMax(&'c Column, bool),
}

impl<'c> AggInput<'c> {
    fn bind(func: AggFunc, col: Option<&'c Column>) -> Result<AggInput<'c>> {
        Ok(match func {
            AggFunc::CountStar => AggInput::None,
            AggFunc::CountIf => AggInput::Mask(col.expect("checked above").as_bool()?),
            AggFunc::CountDistinct => AggInput::Encoded(key_values(col.expect("checked above"))?),
            AggFunc::Sum => match col.expect("checked above") {
                Column::Decimal(v, s) => AggInput::Dec(v, *s),
                Column::Int64(v) => AggInput::I64(v),
                Column::Int32(v) => AggInput::I32(v),
                Column::Float64(v) => AggInput::SumF64(v.clone()),
                other => {
                    return Err(EngineError::Plan(format!(
                        "sum over non-numeric column of type {}",
                        other.data_type()
                    )))
                }
            },
            AggFunc::Avg => match col.expect("checked above") {
                Column::Decimal(v, s) => AggInput::AvgFixed(Cow::Borrowed(&v[..]), *s),
                Column::Int64(v) => AggInput::AvgFixed(Cow::Borrowed(&v[..]), 0),
                Column::Int32(v) => {
                    AggInput::AvgFixed(Cow::Owned(v.iter().map(|&x| x as i64).collect()), 0)
                }
                Column::Float64(v) => AggInput::Avg(v.clone()),
                other => {
                    return Err(EngineError::Plan(format!(
                        "avg over non-numeric column of type {}",
                        other.data_type()
                    )))
                }
            },
            AggFunc::Min | AggFunc::Max => {
                AggInput::MinMax(col.expect("checked above"), func == AggFunc::Min)
            }
        })
    }
}

/// One morsel's thread-local partial aggregation.
pub(super) struct MorselAgg {
    map: KeyMap,
    keys: Vec<Key>,
    first_rows: Vec<u32>,
    states: Vec<AggState>,
}

impl MorselAgg {
    fn new(inputs: &[AggInput]) -> Self {
        Self::with_states(inputs.iter().map(AggState::empty_like).collect())
    }

    /// An empty partial for the fused executor's slot-fed aggregates.
    pub(super) fn for_slots(kinds: &[SlotAgg]) -> Self {
        Self::with_states(kinds.iter().map(|k| k.empty_state()).collect())
    }

    fn with_states(states: Vec<AggState>) -> Self {
        Self { map: KeyMap::default(), keys: Vec::new(), first_rows: Vec::new(), states }
    }

    #[inline]
    fn push_row(&mut self, i: usize, encoded: &[Vec<i64>], inputs: &[AggInput]) {
        let g = self.group_of(key_at(encoded, i), i as u32);
        for (st, input) in self.states.iter_mut().zip(inputs) {
            st.push(g as usize, i, input);
        }
    }

    /// Fused-path morsel push: one group-resolution pass over the key
    /// buffers, then one accumulation sweep per aggregate with the state
    /// dispatch hoisted out of the row loop. Keys are built from per-morsel
    /// VM buffers and `rows` carries *global* base-table row ids, so merged
    /// `first_rows` (and with them the output group order and key gathers)
    /// are identical to the materializing path's; each state sees its rows
    /// in the same order row-at-a-time pushing would feed them.
    pub(super) fn push_slot_batch(
        &mut self,
        keybufs: &[Vec<i64>],
        rows: &[u32],
        aggbufs: &[Option<Vec<i64>>],
        kinds: &[SlotAgg],
        gids: &mut Vec<u32>,
    ) {
        gids.clear();
        gids.reserve(rows.len());
        for (vi, &row) in rows.iter().enumerate() {
            let g = self.group_of(Key::from_slots(keybufs, vi), row);
            gids.push(g);
        }
        for (st, (buf, &kind)) in self.states.iter_mut().zip(aggbufs.iter().zip(kinds)) {
            st.push_slot_batch(gids, buf.as_deref(), kind);
        }
    }

    #[inline]
    fn group_of(&mut self, k: Key, row_id: u32) -> u32 {
        match self.map.get(&k) {
            Some(&g) => g,
            None => {
                let g = self.keys.len() as u32;
                self.map.insert(k.clone(), g);
                self.keys.push(k);
                self.first_rows.push(row_id);
                for st in &mut self.states {
                    st.grow_to(g as usize + 1);
                }
                g
            }
        }
    }
}

/// How the fused executor feeds one VM-computed `i64` slot per row into an
/// [`AggState`]. Slots carry the `key_values` encoding (decimal mantissas,
/// bools as 0/1, …), so the states accumulate exactly the values the
/// materializing path's typed inputs would. Aggregates without an exact
/// slot form (float sums/avgs, min/max) are not represented — plans using
/// them fall back to the materializing executor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(super) enum SlotAgg {
    CountStar,
    CountIf,
    CountDistinct,
    SumDec(u8),
    SumInt,
    AvgFixed(u8),
}

impl SlotAgg {
    /// The slot form of `func` over an input of type `dtype` (`None` for
    /// `count(*)`); `None` means the pairing has no exact slot form.
    pub(super) fn bind(func: AggFunc, dtype: Option<DataType>) -> Option<SlotAgg> {
        Some(match (func, dtype) {
            (AggFunc::CountStar, _) => SlotAgg::CountStar,
            (AggFunc::CountIf, Some(DataType::Bool)) => SlotAgg::CountIf,
            (AggFunc::CountDistinct, Some(_)) => SlotAgg::CountDistinct,
            (AggFunc::Sum, Some(DataType::Decimal(s))) => SlotAgg::SumDec(s),
            (AggFunc::Sum, Some(DataType::Int64 | DataType::Int32)) => SlotAgg::SumInt,
            (AggFunc::Avg, Some(DataType::Decimal(s))) => SlotAgg::AvgFixed(s),
            (AggFunc::Avg, Some(DataType::Int64 | DataType::Int32)) => SlotAgg::AvgFixed(0),
            _ => return None,
        })
    }

    fn empty_state(self) -> AggState {
        match self {
            SlotAgg::CountStar | SlotAgg::CountIf => AggState::Count(Vec::new()),
            SlotAgg::CountDistinct => AggState::Distinct(Vec::new()),
            SlotAgg::SumDec(s) => AggState::SumDec(Vec::new(), s),
            SlotAgg::SumInt => AggState::SumInt(Vec::new()),
            SlotAgg::AvgFixed(s) => {
                AggState::AvgFixed { sum: Vec::new(), cnt: Vec::new(), scale: s }
            }
        }
    }

    /// Builds the empty global states for a fused aggregation.
    pub(super) fn empty_states(kinds: &[SlotAgg]) -> Vec<AggState> {
        kinds.iter().map(|k| k.empty_state()).collect()
    }
}

/// Per-aggregate accumulator state, one slot per group.
pub(super) enum AggState {
    Count(Vec<i64>),
    Distinct(Vec<HashSet<i64>>),
    SumDec(Vec<i128>, u8),
    SumInt(Vec<i64>),
    SumFloat(Vec<f64>),
    AvgFixed { sum: Vec<i128>, cnt: Vec<i64>, scale: u8 },
    Avg { sum: Vec<f64>, cnt: Vec<i64> },
    MinMax { best: Vec<Option<Value>>, want_min: bool, dtype: DataType },
}

impl AggState {
    /// An empty state matching the input/function pairing of `input`.
    fn empty_like(input: &AggInput) -> AggState {
        match input {
            AggInput::None | AggInput::Mask(_) => AggState::Count(Vec::new()),
            AggInput::Encoded(_) => AggState::Distinct(Vec::new()),
            AggInput::Dec(_, s) => AggState::SumDec(Vec::new(), *s),
            AggInput::I64(_) | AggInput::I32(_) => AggState::SumInt(Vec::new()),
            AggInput::SumF64(_) => AggState::SumFloat(Vec::new()),
            AggInput::AvgFixed(_, s) => {
                AggState::AvgFixed { sum: Vec::new(), cnt: Vec::new(), scale: *s }
            }
            AggInput::Avg(_) => AggState::Avg { sum: Vec::new(), cnt: Vec::new() },
            AggInput::MinMax(c, want_min) => {
                AggState::MinMax { best: Vec::new(), want_min: *want_min, dtype: c.data_type() }
            }
        }
    }

    pub(super) fn grow_to(&mut self, ngroups: usize) {
        match self {
            AggState::Count(v) | AggState::SumInt(v) => v.resize(ngroups, 0),
            AggState::Distinct(v) => v.resize_with(ngroups, HashSet::new),
            AggState::SumDec(v, _) => v.resize(ngroups, 0),
            AggState::SumFloat(v) => v.resize(ngroups, 0.0),
            AggState::AvgFixed { sum, cnt, .. } => {
                sum.resize(ngroups, 0);
                cnt.resize(ngroups, 0);
            }
            AggState::Avg { sum, cnt } => {
                sum.resize(ngroups, 0.0);
                cnt.resize(ngroups, 0);
            }
            AggState::MinMax { best, .. } => best.resize(ngroups, None),
        }
    }

    #[inline]
    fn push(&mut self, g: usize, i: usize, input: &AggInput) {
        match (self, input) {
            (AggState::Count(v), AggInput::None) => v[g] += 1,
            (AggState::Count(v), AggInput::Mask(m)) => v[g] += i64::from(m[i]),
            (AggState::Distinct(v), AggInput::Encoded(e)) => {
                v[g].insert(e[i]);
            }
            (AggState::SumDec(v, _), AggInput::Dec(m, _)) => v[g] += m[i] as i128,
            (AggState::SumInt(v), AggInput::I64(x)) => v[g] += x[i],
            (AggState::SumInt(v), AggInput::I32(x)) => v[g] += x[i] as i64,
            (AggState::SumFloat(v), AggInput::SumF64(x)) => v[g] += x[i],
            (AggState::AvgFixed { sum, cnt, .. }, AggInput::AvgFixed(m, _)) => {
                sum[g] += m[i] as i128;
                cnt[g] += 1;
            }
            (AggState::Avg { sum, cnt }, AggInput::Avg(x)) => {
                sum[g] += x[i];
                cnt[g] += 1;
            }
            (AggState::MinMax { best, want_min, .. }, AggInput::MinMax(c, _)) => {
                let v = c.value(i);
                Self::consider(&mut best[g], v, *want_min);
            }
            _ => unreachable!("state/input pairing fixed at bind time"),
        }
    }

    /// Fused-path push: one `key_values`-encoded slot per row (see
    /// [`SlotAgg`]), swept a whole morsel at a time. Every arm accumulates
    /// exactly what the matching [`AggInput`] arm of [`AggState::push`]
    /// would, in the same row order.
    fn push_slot_batch(&mut self, gids: &[u32], slots: Option<&[i64]>, kind: SlotAgg) {
        let input = |name| slots.unwrap_or_else(|| panic!("{name} has an input column"));
        match (self, kind) {
            (AggState::Count(v), SlotAgg::CountStar) => {
                for &g in gids {
                    v[g as usize] += 1;
                }
            }
            (AggState::Count(v), SlotAgg::CountIf) => {
                for (&g, &x) in gids.iter().zip(input("count_if")) {
                    v[g as usize] += x;
                }
            }
            (AggState::Distinct(v), SlotAgg::CountDistinct) => {
                for (&g, &x) in gids.iter().zip(input("count_distinct")) {
                    v[g as usize].insert(x);
                }
            }
            (AggState::SumDec(v, _), SlotAgg::SumDec(_)) => {
                for (&g, &x) in gids.iter().zip(input("sum")) {
                    v[g as usize] += x as i128;
                }
            }
            (AggState::SumInt(v), SlotAgg::SumInt) => {
                for (&g, &x) in gids.iter().zip(input("sum")) {
                    v[g as usize] += x;
                }
            }
            (AggState::AvgFixed { sum, cnt, .. }, SlotAgg::AvgFixed(_)) => {
                for (&g, &x) in gids.iter().zip(input("avg")) {
                    sum[g as usize] += x as i128;
                    cnt[g as usize] += 1;
                }
            }
            _ => unreachable!("state/kind pairing fixed at compile time"),
        }
    }

    #[inline]
    fn consider(slot: &mut Option<Value>, v: Value, want_min: bool) {
        let replace = match slot {
            None => true,
            Some(cur) => {
                let ord = v.total_cmp(cur);
                if want_min {
                    ord.is_lt()
                } else {
                    ord.is_gt()
                }
            }
        };
        if replace {
            *slot = Some(v);
        }
    }

    /// Folds a morsel-local state into this global one; `gid_map` maps local
    /// group ids to global ones. Merging in morsel order keeps float sums
    /// and min/max tie-breaks identical to the serial scan.
    fn merge_from(&mut self, other: AggState, gid_map: &[u32]) {
        match (self, other) {
            (AggState::Count(g), AggState::Count(l))
            | (AggState::SumInt(g), AggState::SumInt(l)) => {
                for (lg, x) in l.into_iter().enumerate() {
                    g[gid_map[lg] as usize] += x;
                }
            }
            (AggState::Distinct(g), AggState::Distinct(l)) => {
                for (lg, set) in l.into_iter().enumerate() {
                    g[gid_map[lg] as usize].extend(set);
                }
            }
            (AggState::SumDec(g, _), AggState::SumDec(l, _)) => {
                for (lg, x) in l.into_iter().enumerate() {
                    g[gid_map[lg] as usize] += x;
                }
            }
            (AggState::SumFloat(g), AggState::SumFloat(l)) => {
                for (lg, x) in l.into_iter().enumerate() {
                    g[gid_map[lg] as usize] += x;
                }
            }
            (
                AggState::AvgFixed { sum: gs, cnt: gc, .. },
                AggState::AvgFixed { sum: ls, cnt: lc, .. },
            ) => {
                for (lg, (s, c)) in ls.into_iter().zip(lc).enumerate() {
                    gs[gid_map[lg] as usize] += s;
                    gc[gid_map[lg] as usize] += c;
                }
            }
            (AggState::Avg { sum: gs, cnt: gc }, AggState::Avg { sum: ls, cnt: lc }) => {
                for (lg, (s, c)) in ls.into_iter().zip(lc).enumerate() {
                    gs[gid_map[lg] as usize] += s;
                    gc[gid_map[lg] as usize] += c;
                }
            }
            (AggState::MinMax { best: g, want_min, .. }, AggState::MinMax { best: l, .. }) => {
                let want_min = *want_min;
                for (lg, v) in l.into_iter().enumerate() {
                    if let Some(v) = v {
                        Self::consider(&mut g[gid_map[lg] as usize], v, want_min);
                    }
                }
            }
            _ => unreachable!("partials share one state layout"),
        }
    }

    pub(super) fn finish(self) -> Result<Column> {
        match self {
            AggState::Count(v) | AggState::SumInt(v) => Ok(Column::Int64(v)),
            AggState::Distinct(v) => {
                Ok(Column::Int64(v.into_iter().map(|s| s.len() as i64).collect()))
            }
            AggState::SumDec(v, s) => {
                let out: Vec<i64> = v
                    .into_iter()
                    .map(|x| i64::try_from(x).map_err(|_| StorageError::DecimalOverflow))
                    .collect::<std::result::Result<_, _>>()?;
                Ok(Column::Decimal(out, s))
            }
            AggState::SumFloat(v) => Ok(Column::Float64(v)),
            AggState::AvgFixed { sum, cnt, scale } => {
                let div = crate::eval::POW10[scale as usize] as f64;
                Ok(Column::Float64(
                    sum.iter()
                        .zip(&cnt)
                        .map(|(&s, &c)| if c == 0 { 0.0 } else { (s as f64 / div) / c as f64 })
                        .collect(),
                ))
            }
            AggState::Avg { sum, cnt } => Ok(Column::Float64(
                sum.iter()
                    .zip(&cnt)
                    .map(|(s, &c)| if c == 0 { 0.0 } else { s / c as f64 })
                    .collect(),
            )),
            AggState::MinMax { best, dtype, .. } => column_from_values(dtype, best),
        }
    }
}

/// Builds a typed column from per-group optional values (None → type default,
/// only reachable for empty global groups).
fn column_from_values(dtype: DataType, vals: Vec<Option<Value>>) -> Result<Column> {
    match dtype {
        DataType::Int64 => Ok(Column::Int64(
            vals.into_iter().map(|v| v.and_then(|v| v.as_i64()).unwrap_or(0)).collect(),
        )),
        DataType::Int32 => Ok(Column::Int32(
            vals.into_iter().map(|v| v.and_then(|v| v.as_i64()).unwrap_or(0) as i32).collect(),
        )),
        DataType::Float64 => Ok(Column::Float64(
            vals.into_iter().map(|v| v.and_then(|v| v.as_f64()).unwrap_or(0.0)).collect(),
        )),
        DataType::Decimal(s) => Ok(Column::Decimal(
            vals.into_iter()
                .map(|v| match v {
                    Some(Value::Dec(d)) => d.mantissa(),
                    _ => 0,
                })
                .collect(),
            s,
        )),
        DataType::Date => Ok(Column::Date(
            vals.into_iter()
                .map(|v| match v {
                    Some(Value::Date(d)) => d.0,
                    _ => 0,
                })
                .collect(),
        )),
        DataType::Utf8 => {
            let mut b = DictBuilder::with_capacity(vals.len());
            for v in vals {
                match v {
                    Some(Value::Str(s)) => b.push(&s),
                    _ => b.push(""),
                }
            }
            Ok(Column::Str(b.finish()))
        }
        DataType::Bool => Ok(Column::Bool(
            vals.into_iter().map(|v| matches!(v, Some(Value::Bool(true)))).collect(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::col;

    fn exec_aggregate(
        rel: &Relation,
        group_by: &[(crate::expr::Expr, String)],
        aggs: &[AggExpr],
        prof: &mut WorkProfile,
    ) -> Result<Relation> {
        let ctx = QueryContext::default();
        super::exec_aggregate(
            rel,
            group_by,
            aggs,
            prof,
            &EngineConfig::serial(),
            Tracer::off(),
            &ctx,
        )
    }

    fn rel() -> Relation {
        Relation::new(vec![
            ("flag".into(), Arc::new(Column::Str(["A", "B", "A", "A"].into_iter().collect()))),
            ("qty".into(), Arc::new(Column::Decimal(vec![100, 200, 300, 400], 2))),
            ("f".into(), Arc::new(Column::Float64(vec![1.0, 2.0, 3.0, 4.0]))),
            ("b".into(), Arc::new(Column::Bool(vec![true, false, false, true]))),
        ])
        .unwrap()
    }

    fn agg(group: Vec<(crate::expr::Expr, &str)>, aggs: Vec<AggExpr>) -> Relation {
        let group: Vec<(crate::expr::Expr, String)> =
            group.into_iter().map(|(e, n)| (e, n.to_string())).collect();
        let mut p = WorkProfile::new();
        exec_aggregate(&rel(), &group, &aggs, &mut p).unwrap()
    }

    #[test]
    fn grouped_sum_and_count() {
        let out = agg(
            vec![(col("flag"), "flag")],
            vec![AggExpr::sum(col("qty"), "s"), AggExpr::count_star("n")],
        );
        assert_eq!(out.num_rows(), 2);
        // group order = first appearance: A then B
        assert_eq!(out.value(0, "flag").unwrap(), Value::Str("A".into()));
        let (m, s) = out.column("s").unwrap().as_decimal().unwrap();
        assert_eq!((m[0], s), (800, 2)); // 1+3+4 = 8.00
        assert_eq!(m[1], 200);
        assert_eq!(out.column("n").unwrap().as_i64().unwrap(), &[3, 1]);
    }

    #[test]
    fn global_aggregates() {
        let out = agg(
            vec![],
            vec![
                AggExpr::avg(col("qty"), "a"),
                AggExpr::min(col("qty"), "lo"),
                AggExpr::max(col("qty"), "hi"),
            ],
        );
        assert_eq!(out.num_rows(), 1);
        assert!((out.column("a").unwrap().as_f64().unwrap()[0] - 2.5).abs() < 1e-9);
        assert_eq!(out.column("lo").unwrap().as_decimal().unwrap().0, &[100]);
        assert_eq!(out.column("hi").unwrap().as_decimal().unwrap().0, &[400]);
    }

    #[test]
    fn count_if_counts_true() {
        let out = agg(vec![(col("flag"), "g")], vec![AggExpr::count_if(col("b"), "n")]);
        assert_eq!(out.column("n").unwrap().as_i64().unwrap(), &[2, 0]);
    }

    #[test]
    fn count_distinct() {
        let out = agg(vec![], vec![AggExpr::count_distinct(col("flag"), "d")]);
        assert_eq!(out.column("d").unwrap().as_i64().unwrap(), &[2]);
    }

    #[test]
    fn min_max_on_strings() {
        let out =
            agg(vec![], vec![AggExpr::min(col("flag"), "lo"), AggExpr::max(col("flag"), "hi")]);
        assert_eq!(out.value(0, "lo").unwrap(), Value::Str("A".into()));
        assert_eq!(out.value(0, "hi").unwrap(), Value::Str("B".into()));
    }

    #[test]
    fn empty_input_global_group() {
        let empty = Relation::new(vec![("x".into(), Arc::new(Column::Int64(vec![])))]).unwrap();
        let mut p = WorkProfile::new();
        let out = exec_aggregate(
            &empty,
            &[],
            &[AggExpr::count_star("n"), AggExpr::sum(col("x"), "s")],
            &mut p,
        )
        .unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.column("n").unwrap().as_i64().unwrap(), &[0]);
        assert_eq!(out.column("s").unwrap().as_i64().unwrap(), &[0]);
    }

    #[test]
    fn sum_float() {
        let out = agg(vec![(col("flag"), "g")], vec![AggExpr::sum(col("f"), "s")]);
        let f = out.column("s").unwrap().as_f64().unwrap();
        assert!((f[0] - 8.0).abs() < 1e-9);
        assert!((f[1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn parallel_morsel_merge_matches_serial() {
        // A relation wide enough to span many tiny morsels; group keys cycle
        // so every morsel sees every group. Parallel runs (2 and 4 threads,
        // 7-row morsels) must be bit-identical to the serial result —
        // including group order and the profile counters.
        let n = 100i64;
        let rel = Relation::new(vec![
            ("g".into(), Arc::new(Column::Int64((0..n).map(|i| i % 5).collect()))),
            ("d".into(), Arc::new(Column::Decimal((0..n).map(|i| i * 7).collect(), 2))),
            ("f".into(), Arc::new(Column::Float64((0..n).map(|i| i as f64 * 0.31).collect()))),
        ])
        .unwrap();
        let group = vec![(col("g"), "g".to_string())];
        let aggs = vec![
            AggExpr::sum(col("d"), "sd"),
            AggExpr::sum(col("f"), "sf"),
            AggExpr::avg(col("f"), "af"),
            AggExpr::min(col("d"), "lo"),
            AggExpr::max(col("f"), "hi"),
            AggExpr::count_star("n"),
            AggExpr::count_distinct(col("d"), "u"),
        ];
        let base_cfg = EngineConfig::serial().with_morsel_rows(7);
        let mut base_prof = WorkProfile::new();
        let ctx = QueryContext::default();
        let base = super::exec_aggregate(
            &rel,
            &group,
            &aggs,
            &mut base_prof,
            &base_cfg,
            Tracer::off(),
            &ctx,
        )
        .unwrap();
        for threads in [2, 4] {
            let cfg = EngineConfig::with_threads(threads).with_morsel_rows(7);
            let mut prof = WorkProfile::new();
            let out =
                super::exec_aggregate(&rel, &group, &aggs, &mut prof, &cfg, Tracer::off(), &ctx)
                    .unwrap();
            assert_eq!(out, base, "parallel aggregate diverged at {threads} threads");
            assert_eq!(prof, base_prof, "profile counters diverged at {threads} threads");
        }
    }

    #[test]
    fn grace_fallback_is_bit_exact_and_budget_bounded() {
        // 10 groups × width 32·(1 key + 3 aggs) = 128 B/group: a 640 B budget
        // fits at most 5 group table entries at once, forcing the Grace path,
        // which must still be bit-identical to the unconstrained serial run
        // at every thread count.
        let n = 200i64;
        let rel = Relation::new(vec![
            ("g".into(), Arc::new(Column::Int64((0..n).map(|i| i % 10).collect()))),
            ("d".into(), Arc::new(Column::Decimal((0..n).map(|i| i * 3).collect(), 2))),
            ("f".into(), Arc::new(Column::Float64((0..n).map(|i| i as f64 * 0.17).collect()))),
        ])
        .unwrap();
        let group = vec![(col("g"), "g".to_string())];
        let aggs = vec![
            AggExpr::sum(col("d"), "sd"),
            AggExpr::avg(col("f"), "af"),
            AggExpr::count_star("n"),
        ];
        let mut base_prof = WorkProfile::new();
        let base = super::exec_aggregate(
            &rel,
            &group,
            &aggs,
            &mut base_prof,
            &EngineConfig::serial().with_morsel_rows(13),
            Tracer::off(),
            &QueryContext::default(),
        )
        .unwrap();
        for threads in [1, 2, 4] {
            let cfg = EngineConfig::with_threads(threads).with_morsel_rows(13);
            let ctx = QueryContext::with_budget(640);
            let mut prof = WorkProfile::new();
            let out =
                super::exec_aggregate(&rel, &group, &aggs, &mut prof, &cfg, Tracer::off(), &ctx)
                    .unwrap();
            assert_eq!(out, base, "grace aggregate diverged at {threads} threads");
            assert_eq!(prof, base_prof, "grace profile diverged at {threads} threads");
            assert!(ctx.fallbacks() > 0, "640 B budget must take the Grace path");
            assert_eq!(ctx.used(), 0, "all reservations released after the query");
        }
        // A budget below one table entry cannot be partitioned around.
        let ctx = QueryContext::with_budget(100);
        let mut prof = WorkProfile::new();
        let err = super::exec_aggregate(
            &rel,
            &group,
            &aggs,
            &mut prof,
            &EngineConfig::serial(),
            Tracer::off(),
            &ctx,
        )
        .unwrap_err();
        match err {
            EngineError::ResourceExhausted { operator, budget, .. } => {
                assert_eq!(operator, "aggregate");
                assert_eq!(budget, 100);
            }
            other => panic!("expected ResourceExhausted, got {other:?}"),
        }
        assert_eq!(ctx.used(), 0, "failed queries leave no reservation behind");
    }

    /// 5 000 distinct groups at width 64 (one key, one agg): a 320 B budget
    /// holds 5 table entries, which Grace's 1024-partition cap cannot reach
    /// (≈ 5 groups/partition expected, with hot bins well past it) but the
    /// spill rung's deeper fan-out can.
    fn spill_agg_inputs() -> (Relation, Vec<(crate::expr::Expr, String)>, Vec<AggExpr>) {
        let n = 5_000i64;
        let rel = Relation::new(vec![
            ("g".into(), Arc::new(Column::Int64((0..n).map(|i| (i * 13) % 5_000).collect()))),
            ("d".into(), Arc::new(Column::Decimal((0..n).map(|i| i * 3).collect(), 2))),
        ])
        .unwrap();
        let group = vec![(col("g"), "g".to_string())];
        let aggs = vec![AggExpr::sum(col("d"), "sd")];
        (rel, group, aggs)
    }

    #[test]
    fn spill_rung_is_bit_exact_past_grace() {
        let (rel, group, aggs) = spill_agg_inputs();
        let mut base_prof = WorkProfile::new();
        let base = super::exec_aggregate(
            &rel,
            &group,
            &aggs,
            &mut base_prof,
            &EngineConfig::serial().with_morsel_rows(257),
            Tracer::off(),
            &QueryContext::default(),
        )
        .unwrap();
        for threads in [1, 2, 4] {
            let cfg = EngineConfig::with_threads(threads).with_morsel_rows(257);
            let disk = Arc::new(wimpi_storage::SpillDisk::new(
                wimpi_storage::SpillConfig::with_capacity(16 << 20),
            ));
            let ctx = QueryContext::with_budget(320).with_spill(Arc::clone(&disk));
            let mut prof = WorkProfile::new();
            let out =
                super::exec_aggregate(&rel, &group, &aggs, &mut prof, &cfg, Tracer::off(), &ctx)
                    .unwrap();
            assert_eq!(out, base, "spill aggregate diverged at {threads} threads");
            assert!(prof.spilled_bytes > 0, "the spill rung must engage");
            assert!(
                ctx.max_fallback_parts() > MAX_GRACE_PARTS as u32,
                "fan-out must pass the Grace cap"
            );
            assert_eq!(disk.used(), 0, "all spill chunks freed");
            assert_eq!(ctx.used(), 0, "all reservations released");
        }
    }

    #[test]
    fn spill_rung_survives_injected_faults_bit_exactly() {
        let (rel, group, aggs) = spill_agg_inputs();
        let mut base_prof = WorkProfile::new();
        let base = super::exec_aggregate(
            &rel,
            &group,
            &aggs,
            &mut base_prof,
            &EngineConfig::serial().with_morsel_rows(257),
            Tracer::off(),
            &QueryContext::default(),
        )
        .unwrap();
        let disk_cfg = wimpi_storage::SpillConfig::with_capacity(16 << 20)
            .with_faults(wimpi_storage::SpillFaults::every(42, 8))
            .with_max_read_retries(16);
        let disk = Arc::new(wimpi_storage::SpillDisk::new(disk_cfg));
        let ctx = QueryContext::with_budget(320).with_spill(Arc::clone(&disk));
        let mut prof = WorkProfile::new();
        let out = super::exec_aggregate(
            &rel,
            &group,
            &aggs,
            &mut prof,
            &EngineConfig::serial().with_morsel_rows(257),
            Tracer::off(),
            &ctx,
        )
        .unwrap();
        assert_eq!(out, base, "faulted spill aggregate must stay bit-exact");
        assert!(prof.spill_corruptions_detected > 0, "fault injection must fire");
        assert_eq!(disk.used(), 0);
    }

    #[test]
    fn impossible_budget_still_errors_with_a_spill_disk() {
        // A budget below one table entry cannot be partitioned around at any
        // fan-out, disk or no disk.
        let (rel, group, aggs) = spill_agg_inputs();
        let disk = Arc::new(wimpi_storage::SpillDisk::new(
            wimpi_storage::SpillConfig::with_capacity(16 << 20),
        ));
        let ctx = QueryContext::with_budget(32).with_spill(Arc::clone(&disk));
        let mut prof = WorkProfile::new();
        let err = super::exec_aggregate(
            &rel,
            &group,
            &aggs,
            &mut prof,
            &EngineConfig::serial(),
            Tracer::off(),
            &ctx,
        )
        .unwrap_err();
        assert!(
            matches!(err, EngineError::ResourceExhausted { ref operator, .. } if operator == "aggregate"),
            "got {err:?}"
        );
        assert_eq!(disk.used(), 0, "the failed attempt freed its chunks");
        assert_eq!(ctx.used(), 0);
    }
}
