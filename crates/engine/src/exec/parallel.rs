//! Morsel-driven parallel execution: a small work-stealing pool over fixed
//! ~64K-row morsels (Leis et al., SIGMOD 2014), built on `std::thread::scope`
//! and per-worker crossbeam-style deques (implemented here with
//! `Mutex<VecDeque>` — the build environment cannot reach crates.io).
//!
//! ## Determinism contract
//!
//! Morsel boundaries come from [`morsel_ranges`] and depend only on the row
//! count and `morsel_rows` — never on the thread count. Workers race over
//! *which* morsel they execute, but every per-morsel result is a pure
//! function of its input range, and [`run_morsels`] returns results in
//! morsel-index order. Any reduction the caller performs over that ordered
//! vector (float sums included) is therefore bit-identical at 1, 2, or 64
//! threads. Changing `morsel_rows` may move float reduction boundaries;
//! changing `threads` never does.
//!
//! Work counters are charged once per kernel from global row counts (not
//! per-worker), so a parallel run reports exactly the serial totals; see
//! [`crate::stats::WorkProfile::merge`] for combining profiles that were
//! accumulated independently.

use std::collections::VecDeque;
use std::ops::Range;
use std::sync::Mutex;

pub use wimpi_storage::morsel::{morsel_ranges, DEFAULT_MORSEL_ROWS};

/// Which executor runs the query pipeline (DESIGN.md §13).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Executor {
    /// Column-at-a-time: every operator fully materializes its output
    /// columns before the next one runs (the MonetDB style the engine
    /// started with).
    #[default]
    Materialize,
    /// Morsel-at-a-time fusion: scan→filter→eval→aggregate pipelines run
    /// per morsel with compiled expression bytecode and no intermediate
    /// column materialization. Plan shapes the fused path does not cover
    /// fall back to [`Executor::Materialize`] transparently — results are
    /// bit-identical either way.
    Fused,
}

impl Executor {
    /// The knob's name in `SET executor = …` / trace labels.
    pub fn label(self) -> &'static str {
        match self {
            Executor::Materialize => "materialize",
            Executor::Fused => "fused",
        }
    }
}

/// Execution-wide knobs for the morsel-driven engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads for parallel kernels. `1` runs every kernel inline on
    /// the calling thread — byte-for-byte today's serial engine.
    pub threads: usize,
    /// Rows per morsel. Fixed boundaries are what make parallel runs
    /// bit-exact with serial ones; see the module docs before changing this
    /// mid-comparison.
    pub morsel_rows: usize,
    /// Verify sealed [`IntegrityManifest`](wimpi_storage::IntegrityManifest)
    /// checksums on every scanned column chunk, raising a typed
    /// [`EngineError::Integrity`](crate::EngineError::Integrity) on the
    /// first mismatch (DESIGN.md §12). Off by default and zero-cost when
    /// off, like the tracer: one branch per scan, no per-row work.
    pub verify_checksums: bool,
    /// Which executor runs supported pipelines (DESIGN.md §13). Defaults to
    /// the materializing engine; [`Executor::Fused`] opts eligible
    /// aggregate-over-filter pipelines into morsel-at-a-time fusion with
    /// compiled bytecode, falling back transparently everywhere else.
    pub executor: Executor,
    /// Consult sealed [`ZoneMap`](wimpi_storage::ZoneMap)s before filtering:
    /// morsels whose min/max range (or dictionary presence bitmap) proves a
    /// conjunct can never hold are skipped without touching the data, and
    /// conjuncts proven always-true over a morsel are elided (DESIGN.md
    /// §14). Pruning is a pure no-op on results and row counts — only
    /// `pruned_*` counters and streamed bytes change — but the byte charges
    /// depend on the morsel grid, so it is off by default to preserve the
    /// profile-invariance contracts of the unpruned executors.
    pub prune_scans: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        Self {
            threads,
            morsel_rows: DEFAULT_MORSEL_ROWS,
            verify_checksums: false,
            executor: Executor::Materialize,
            prune_scans: false,
        }
    }
}

impl EngineConfig {
    /// Single-threaded execution (the pre-parallel engine, exactly).
    pub fn serial() -> Self {
        Self {
            threads: 1,
            morsel_rows: DEFAULT_MORSEL_ROWS,
            verify_checksums: false,
            executor: Executor::Materialize,
            prune_scans: false,
        }
    }

    /// A config with `threads` workers and the default morsel size.
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
            morsel_rows: DEFAULT_MORSEL_ROWS,
            verify_checksums: false,
            executor: Executor::Materialize,
            prune_scans: false,
        }
    }

    /// Overrides the morsel size (mainly for tests, which shrink it to
    /// exercise multi-morsel paths on small data).
    pub fn with_morsel_rows(mut self, morsel_rows: usize) -> Self {
        self.morsel_rows = morsel_rows.max(1);
        self
    }

    /// Enables (or disables) scan-time checksum verification.
    pub fn with_verify_checksums(mut self, verify: bool) -> Self {
        self.verify_checksums = verify;
        self
    }

    /// Selects the executor for supported pipelines.
    pub fn with_executor(mut self, executor: Executor) -> Self {
        self.executor = executor;
        self
    }

    /// Enables (or disables) zone-map scan pruning.
    pub fn with_prune_scans(mut self, prune: bool) -> Self {
        self.prune_scans = prune;
        self
    }
}

/// Runs `f` over every morsel, returning results in morsel-index order.
///
/// With one worker (or one morsel) everything runs inline. Otherwise morsel
/// indices are dealt round-robin into per-worker deques; each worker pops
/// its own deque LIFO (cache-warm) and steals FIFO from the others (coldest
/// first) when its deque drains. Jobs are only enqueued before the workers
/// start, so an empty sweep over all deques means the pool is done.
pub(crate) fn run_morsels<T, F>(cfg: &EngineConfig, ranges: &[Range<usize>], f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, Range<usize>) -> T + Sync,
{
    run_morsels_indexed(cfg, ranges, |_, i, r| f(i, r))
}

/// [`run_morsels`] with per-morsel trace recording: each morsel's wall time,
/// row count, and executing worker go into `sink`. When the sink is disabled
/// this is exactly `run_morsels` — no timestamps, no recording.
///
/// Morsel spans are recorded on the inline (single-worker) path too, as
/// worker 0, so the trace *structure* is identical at any thread count —
/// only the measured wall times and worker ids vary (see `wimpi-obs`).
pub(crate) fn run_morsels_spanned<T, F>(
    cfg: &EngineConfig,
    ranges: &[Range<usize>],
    sink: &wimpi_obs::MorselSink,
    f: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(usize, Range<usize>) -> T + Sync,
{
    if !sink.is_enabled() {
        return run_morsels(cfg, ranges, f);
    }
    run_morsels_indexed(cfg, ranges, |worker, i, r| {
        let rows = r.len() as u64;
        let started = std::time::Instant::now();
        let out = f(i, r);
        sink.record(wimpi_obs::MorselSpan {
            index: i,
            rows,
            worker,
            wall_ns: started.elapsed().as_nanos() as u64,
        });
        out
    })
}

/// The worker-aware core: `f(worker, morsel_index, range)`. The inline path
/// runs everything as worker 0.
fn run_morsels_indexed<T, F>(cfg: &EngineConfig, ranges: &[Range<usize>], f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, usize, Range<usize>) -> T + Sync,
{
    let nworkers = cfg.threads.min(ranges.len()).max(1);
    if nworkers == 1 {
        return ranges.iter().enumerate().map(|(i, r)| f(0, i, r.clone())).collect();
    }
    let deques: Vec<Mutex<VecDeque<usize>>> =
        (0..nworkers).map(|_| Mutex::new(VecDeque::new())).collect();
    for i in 0..ranges.len() {
        deques[i % nworkers].lock().unwrap().push_back(i);
    }
    let deques = &deques;
    let f = &f;
    let mut partials: Vec<Vec<(usize, T)>> = Vec::with_capacity(nworkers);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..nworkers)
            .map(|w| {
                s.spawn(move || {
                    let mut done = Vec::new();
                    loop {
                        // The own-deque pop must be a standalone statement: its
                        // temporary MutexGuard lives to the end of the enclosing
                        // statement, so folding the steal into `.or_else(..)` on
                        // the same expression would hold deque[w] while locking
                        // the others — a lock cycle once every worker goes
                        // stealing at once. Pop, release, then steal.
                        let own = deques[w].lock().unwrap().pop_back();
                        let job = own.or_else(|| {
                            (1..nworkers).find_map(|d| {
                                deques[(w + d) % nworkers].lock().unwrap().pop_front()
                            })
                        });
                        match job {
                            Some(i) => done.push((i, f(w, i, ranges[i].clone()))),
                            None => break,
                        }
                    }
                    done
                })
            })
            .collect();
        for h in handles {
            partials.push(h.join().expect("morsel worker panicked"));
        }
    });
    let mut results: Vec<Option<T>> = std::iter::repeat_with(|| None).take(ranges.len()).collect();
    for (i, t) in partials.into_iter().flatten() {
        debug_assert!(results[i].is_none(), "morsel {i} executed twice");
        results[i] = Some(t);
    }
    results.into_iter().map(|t| t.expect("every morsel executed exactly once")).collect()
}

/// Maps `f` over morsels of `0..n` and concatenates the per-morsel vectors
/// in morsel order — the workhorse for element-wise kernels, whose output
/// under any chunking equals the single-chunk output.
///
/// The serial/small case calls `f(0..n)` once: zero allocation or dispatch
/// overhead relative to the pre-parallel engine.
pub(crate) fn par_map_concat<T, F>(cfg: &EngineConfig, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(Range<usize>) -> Vec<T> + Sync,
{
    if cfg.threads <= 1 || n <= cfg.morsel_rows {
        return f(0..n);
    }
    let parts = run_morsels(cfg, &morsel_ranges(n, cfg.morsel_rows), |_, r| f(r));
    let mut out = Vec::with_capacity(n);
    for p in parts {
        out.extend(p);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn serial_config_reproduces_defaults() {
        assert_eq!(EngineConfig::serial().threads, 1);
        assert_eq!(EngineConfig::serial().morsel_rows, DEFAULT_MORSEL_ROWS);
        assert_eq!(EngineConfig::with_threads(0).threads, 1, "threads clamp to 1");
    }

    #[test]
    fn every_morsel_runs_exactly_once_in_order() {
        let cfg = EngineConfig::with_threads(4).with_morsel_rows(10);
        let ranges = morsel_ranges(1000, 10);
        let calls = AtomicUsize::new(0);
        let out = run_morsels(&cfg, &ranges, |i, r| {
            calls.fetch_add(1, Ordering::Relaxed);
            (i, r.start, r.end)
        });
        assert_eq!(calls.load(Ordering::Relaxed), 100);
        for (i, (idx, start, end)) in out.iter().enumerate() {
            assert_eq!(*idx, i, "results in morsel order");
            assert_eq!((*start, *end), (i * 10, (i + 1) * 10));
        }
    }

    #[test]
    fn par_map_concat_matches_serial_map() {
        let serial = EngineConfig::serial().with_morsel_rows(7);
        let parallel = EngineConfig::with_threads(4).with_morsel_rows(7);
        let f = |r: std::ops::Range<usize>| -> Vec<u64> { r.map(|i| (i as u64) * 3 + 1).collect() };
        for n in [0usize, 1, 6, 7, 8, 100, 1023] {
            assert_eq!(par_map_concat(&serial, n, f), par_map_concat(&parallel, n, f), "n={n}");
        }
    }

    #[test]
    fn float_reductions_identical_across_thread_counts() {
        // The determinism contract: per-morsel float partials merged in
        // morsel order are bit-identical whatever the worker count.
        let data: Vec<f64> = (0..10_000).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let sum_with = |threads: usize| -> f64 {
            let cfg = EngineConfig::with_threads(threads).with_morsel_rows(64);
            let parts = run_morsels(&cfg, &morsel_ranges(data.len(), 64), |_, r| {
                data[r].iter().sum::<f64>()
            });
            parts.into_iter().sum()
        };
        let s1 = sum_with(1);
        for t in [2, 3, 4, 8] {
            assert_eq!(s1.to_bits(), sum_with(t).to_bits(), "threads={t}");
        }
    }

    #[test]
    fn spanned_run_records_every_morsel_in_order() {
        use wimpi_obs::Tracer;
        for threads in [1usize, 4] {
            let cfg = EngineConfig::with_threads(threads).with_morsel_rows(10);
            let ranges = morsel_ranges(95, 10);
            let tracer = Tracer::enabled();
            let sink = tracer.morsel_sink();
            let out = run_morsels_spanned(&cfg, &ranges, &sink, |i, r| (i, r.len()));
            assert_eq!(out.len(), 10);
            let spans = sink.into_spans();
            assert_eq!(spans.len(), 10, "threads={threads}");
            for (i, s) in spans.iter().enumerate() {
                assert_eq!(s.label, i.to_string(), "merged in morsel order");
                assert_eq!(s.rows_in, if i == 9 { 5 } else { 10 });
            }
        }
        // A disabled sink records nothing and changes nothing.
        let cfg = EngineConfig::with_threads(2).with_morsel_rows(10);
        let sink = Tracer::disabled().morsel_sink();
        let out = run_morsels_spanned(&cfg, &morsel_ranges(95, 10), &sink, |i, _| i);
        assert_eq!(out, (0..10).collect::<Vec<_>>());
        assert!(sink.into_spans().is_empty());
    }

    #[test]
    fn simultaneous_stealing_does_not_deadlock() {
        // Regression: the own-deque pop used to hold its MutexGuard across
        // the steal sweep (guard temporaries live to the end of the `let`
        // statement), so workers that went stealing at the same instant
        // formed a lock cycle — worker w holding deque[w], waiting on
        // deque[w+1]. Trivial jobs over many rounds push every worker into
        // the steal path together; with the cycle present this test hangs.
        let cfg = EngineConfig::with_threads(4).with_morsel_rows(1);
        for n in [4usize, 5, 8, 64] {
            let ranges = morsel_ranges(n, 1);
            for _ in 0..200 {
                let out = run_morsels(&cfg, &ranges, |_, r| r.start);
                assert_eq!(out, (0..n).collect::<Vec<_>>());
            }
        }
    }

    #[test]
    fn stealing_drains_uneven_work() {
        // One slow morsel must not serialize the rest: all work completes
        // and results stay ordered even with pathological imbalance.
        let cfg = EngineConfig::with_threads(4).with_morsel_rows(1);
        let ranges = morsel_ranges(64, 1);
        let out = run_morsels(&cfg, &ranges, |i, r| {
            if i == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            r.start
        });
        assert_eq!(out, (0..64).collect::<Vec<_>>());
    }
}
