//! Logical optimizations: conjunct pushdown and projection pruning.
//!
//! Both rewrites matter enormously to a fully materializing engine: pushing
//! predicates below joins shrinks every later gather, and pruning scan
//! projections keeps filters from materializing untouched columns. The
//! `bench/selection` and ablation benches quantify this.

use std::collections::BTreeSet;

use crate::error::{EngineError, Result};
use crate::expr::{BinOp, Expr};
use crate::plan::{JoinType, LogicalPlan};
use wimpi_storage::Catalog;

/// Optimizes a plan: predicate pushdown, then projection pruning.
pub fn optimize(plan: LogicalPlan, catalog: &Catalog) -> Result<LogicalPlan> {
    let plan = pushdown(plan, catalog)?;
    prune(plan, None, catalog)
}

/// The output column names of a plan.
pub fn output_columns(plan: &LogicalPlan, catalog: &Catalog) -> Result<BTreeSet<String>> {
    Ok(match plan {
        LogicalPlan::Scan { table, projection } => match projection {
            Some(p) => p.iter().cloned().collect(),
            None => {
                catalog.table(table)?.schema().fields().iter().map(|f| f.name.clone()).collect()
            }
        },
        LogicalPlan::Filter { input, .. }
        | LogicalPlan::Sort { input, .. }
        | LogicalPlan::Limit { input, .. } => output_columns(input, catalog)?,
        LogicalPlan::Project { exprs, .. } => exprs.iter().map(|(_, n)| n.clone()).collect(),
        LogicalPlan::Join { left, right, join_type, .. } => {
            let mut cols = output_columns(left, catalog)?;
            match join_type {
                JoinType::Semi | JoinType::Anti => {}
                JoinType::Inner => {
                    cols.extend(output_columns(right, catalog)?);
                }
                JoinType::LeftOuter => {
                    cols.extend(output_columns(right, catalog)?);
                    cols.insert(crate::exec::join::MATCHED_COL.to_string());
                }
            }
            cols
        }
        LogicalPlan::Aggregate { group_by, aggs, .. } => group_by
            .iter()
            .map(|(_, n)| n.clone())
            .chain(aggs.iter().map(|a| a.name.clone()))
            .collect(),
    })
}

/// Splits an AND tree into conjuncts.
pub fn split_conjuncts(e: Expr, out: &mut Vec<Expr>) {
    match e {
        Expr::Bin { op: BinOp::And, left, right } => {
            split_conjuncts(*left, out);
            split_conjuncts(*right, out);
        }
        other => out.push(other),
    }
}

/// Rejoins conjuncts with AND.
fn conjoin(mut conjs: Vec<Expr>) -> Option<Expr> {
    let first = if conjs.is_empty() { return None } else { conjs.remove(0) };
    Some(conjs.into_iter().fold(first, |acc, c| acc.and(c)))
}

fn pushdown(plan: LogicalPlan, catalog: &Catalog) -> Result<LogicalPlan> {
    match plan {
        LogicalPlan::Filter { input, predicate } => {
            let mut conjs = Vec::new();
            split_conjuncts(predicate, &mut conjs);
            let input = pushdown(*input, catalog)?;
            push_conjuncts(input, conjs, catalog)
        }
        LogicalPlan::Project { input, exprs } => {
            Ok(LogicalPlan::Project { input: Box::new(pushdown(*input, catalog)?), exprs })
        }
        LogicalPlan::Join { left, right, on, join_type } => Ok(LogicalPlan::Join {
            left: Box::new(pushdown(*left, catalog)?),
            right: Box::new(pushdown(*right, catalog)?),
            on,
            join_type,
        }),
        LogicalPlan::Aggregate { input, group_by, aggs } => Ok(LogicalPlan::Aggregate {
            input: Box::new(pushdown(*input, catalog)?),
            group_by,
            aggs,
        }),
        LogicalPlan::Sort { input, keys } => {
            Ok(LogicalPlan::Sort { input: Box::new(pushdown(*input, catalog)?), keys })
        }
        LogicalPlan::Limit { input, n } => {
            Ok(LogicalPlan::Limit { input: Box::new(pushdown(*input, catalog)?), n })
        }
        scan @ LogicalPlan::Scan { .. } => Ok(scan),
    }
}

/// Pushes filter conjuncts as deep as their column references allow.
fn push_conjuncts(plan: LogicalPlan, conjs: Vec<Expr>, catalog: &Catalog) -> Result<LogicalPlan> {
    if conjs.is_empty() {
        return Ok(plan);
    }
    match plan {
        LogicalPlan::Filter { input, predicate } => {
            // Merge with the lower filter and keep pushing.
            let mut all = conjs;
            split_conjuncts(predicate, &mut all);
            push_conjuncts(*input, all, catalog)
        }
        LogicalPlan::Join { left, right, on, join_type }
            if matches!(join_type, JoinType::Inner | JoinType::Semi | JoinType::Anti) =>
        {
            let lcols = output_columns(&left, catalog)?;
            let rcols = output_columns(&right, catalog)?;
            let (mut lpush, mut rpush, mut keep) = (Vec::new(), Vec::new(), Vec::new());
            for c in conjs {
                let used = c.column_set();
                if used.is_subset(&lcols) {
                    lpush.push(c);
                } else if used.is_subset(&rcols) && join_type == JoinType::Inner {
                    rpush.push(c);
                } else {
                    keep.push(c);
                }
            }
            let left = push_conjuncts(*left, lpush, catalog)?;
            let right = push_conjuncts(*right, rpush, catalog)?;
            let join =
                LogicalPlan::Join { left: Box::new(left), right: Box::new(right), on, join_type };
            Ok(wrap_filter(join, keep))
        }
        other => Ok(wrap_filter(other, conjs)),
    }
}

fn wrap_filter(plan: LogicalPlan, conjs: Vec<Expr>) -> LogicalPlan {
    match conjoin(conjs) {
        Some(pred) => LogicalPlan::Filter { input: Box::new(plan), predicate: pred },
        None => plan,
    }
}

/// Projection pruning: `required = None` keeps everything at this level but
/// still prunes below concrete-requirement operators (Project/Aggregate).
fn prune(
    plan: LogicalPlan,
    required: Option<&BTreeSet<String>>,
    catalog: &Catalog,
) -> Result<LogicalPlan> {
    match plan {
        LogicalPlan::Scan { table, projection } => {
            let proj = match (required, projection) {
                (Some(req), _) => {
                    let schema = catalog.table(&table)?.schema().clone();
                    let cols: Vec<String> = schema
                        .fields()
                        .iter()
                        .map(|f| f.name.clone())
                        .filter(|n| req.contains(n))
                        .collect();
                    if cols.is_empty() {
                        // A counting query may need no specific column; keep
                        // the narrowest one so row counts survive.
                        schema.fields().first().map(|f| vec![f.name.clone()])
                    } else {
                        Some(cols)
                    }
                }
                (None, p) => p,
            };
            Ok(LogicalPlan::Scan { table, projection: proj })
        }
        LogicalPlan::Filter { input, predicate } => {
            let child_req = required.map(|req| {
                let mut r = req.clone();
                predicate.columns(&mut r);
                r
            });
            Ok(LogicalPlan::Filter {
                input: Box::new(prune(*input, child_req.as_ref(), catalog)?),
                predicate,
            })
        }
        LogicalPlan::Project { input, exprs } => {
            let kept: Vec<(Expr, String)> = match required {
                Some(req) => {
                    let kept: Vec<_> =
                        exprs.iter().filter(|(_, n)| req.contains(n)).cloned().collect();
                    if kept.is_empty() {
                        exprs.clone()
                    } else {
                        kept
                    }
                }
                None => exprs.clone(),
            };
            let mut child_req = BTreeSet::new();
            for (e, _) in &kept {
                e.columns(&mut child_req);
            }
            Ok(LogicalPlan::Project {
                input: Box::new(prune(*input, Some(&child_req), catalog)?),
                exprs: kept,
            })
        }
        LogicalPlan::Join { left, right, on, join_type } => {
            let lcols = output_columns(&left, catalog)?;
            let rcols = output_columns(&right, catalog)?;
            let (lreq, rreq) = match required {
                Some(req) => {
                    let mut l: BTreeSet<String> = req.intersection(&lcols).cloned().collect();
                    let mut r: BTreeSet<String> = req.intersection(&rcols).cloned().collect();
                    for (lk, rk) in &on {
                        l.insert(lk.clone());
                        r.insert(rk.clone());
                    }
                    (Some(l), Some(r))
                }
                None => (None, None),
            };
            Ok(LogicalPlan::Join {
                left: Box::new(prune(*left, lreq.as_ref(), catalog)?),
                right: Box::new(prune(*right, rreq.as_ref(), catalog)?),
                on,
                join_type,
            })
        }
        LogicalPlan::Aggregate { input, group_by, aggs } => {
            let mut child_req = BTreeSet::new();
            for (e, _) in &group_by {
                e.columns(&mut child_req);
            }
            for a in &aggs {
                if let Some(e) = &a.expr {
                    e.columns(&mut child_req);
                }
            }
            // A bare count(*) needs at least one column to count rows over.
            Ok(LogicalPlan::Aggregate {
                input: Box::new(prune(*input, Some(&child_req), catalog)?),
                group_by,
                aggs,
            })
        }
        LogicalPlan::Sort { input, keys } => {
            let child_req = required.map(|req| {
                let mut r = req.clone();
                r.extend(keys.iter().map(|k| k.column.clone()));
                r
            });
            Ok(LogicalPlan::Sort {
                input: Box::new(prune(*input, child_req.as_ref(), catalog)?),
                keys,
            })
        }
        LogicalPlan::Limit { input, n } => {
            Ok(LogicalPlan::Limit { input: Box::new(prune(*input, required, catalog)?), n })
        }
    }
}

/// Validates that every column a plan references exists — a cheap sanity
/// check used by tests and the cluster rewrite.
pub fn check(plan: &LogicalPlan, catalog: &Catalog) -> Result<()> {
    // Walking output_columns covers Scan validity; expression references are
    // checked here.
    fn walk(plan: &LogicalPlan, catalog: &Catalog) -> Result<BTreeSet<String>> {
        let avail: BTreeSet<String> = match plan {
            LogicalPlan::Scan { .. } => return output_columns(plan, catalog),
            LogicalPlan::Join { left, right, join_type, on } => {
                let l = walk(left, catalog)?;
                let r = walk(right, catalog)?;
                for (lk, rk) in on {
                    if !l.contains(lk) {
                        return Err(EngineError::Plan(format!("join key {lk} not in left")));
                    }
                    if !r.contains(rk) {
                        return Err(EngineError::Plan(format!("join key {rk} not in right")));
                    }
                }
                let mut cols = l;
                match join_type {
                    JoinType::Semi | JoinType::Anti => {}
                    JoinType::Inner => cols.extend(r),
                    JoinType::LeftOuter => {
                        cols.extend(r);
                        cols.insert(crate::exec::join::MATCHED_COL.to_string());
                    }
                }
                cols
            }
            _ => {
                let mut cols = BTreeSet::new();
                for c in plan.inputs() {
                    cols = walk(c, catalog)?;
                }
                cols
            }
        };
        let need = |exprs: Vec<&Expr>| -> Result<()> {
            for e in exprs {
                for c in e.column_set() {
                    if !avail.contains(&c) {
                        return Err(EngineError::Plan(format!("unknown column {c}")));
                    }
                }
            }
            Ok(())
        };
        match plan {
            LogicalPlan::Filter { predicate, .. } => need(vec![predicate])?,
            LogicalPlan::Project { exprs, .. } => {
                need(exprs.iter().map(|(e, _)| e).collect())?;
                return Ok(exprs.iter().map(|(_, n)| n.clone()).collect());
            }
            LogicalPlan::Aggregate { group_by, aggs, .. } => {
                need(group_by.iter().map(|(e, _)| e).collect())?;
                need(aggs.iter().filter_map(|a| a.expr.as_ref()).collect())?;
                return Ok(group_by
                    .iter()
                    .map(|(_, n)| n.clone())
                    .chain(aggs.iter().map(|a| a.name.clone()))
                    .collect());
            }
            LogicalPlan::Sort { keys, .. } => {
                for k in keys {
                    if !avail.contains(&k.column) {
                        return Err(EngineError::Plan(format!("unknown sort key {}", k.column)));
                    }
                }
            }
            _ => {}
        }
        Ok(avail)
    }
    walk(plan, catalog).map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};
    use crate::plan::{AggExpr, PlanBuilder};
    use wimpi_storage::{Column, DataType, Field, Schema, Table};

    fn catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.register(
            "t",
            Table::new(
                Schema::new(vec![
                    Field::new("a", DataType::Int64),
                    Field::new("b", DataType::Int64),
                    Field::new("c", DataType::Int64),
                ]),
                vec![
                    Column::Int64(vec![1, 2, 3]),
                    Column::Int64(vec![4, 5, 6]),
                    Column::Int64(vec![7, 8, 9]),
                ],
            )
            .unwrap(),
        );
        cat.register(
            "u",
            Table::new(
                Schema::new(vec![
                    Field::new("x", DataType::Int64),
                    Field::new("y", DataType::Int64),
                ]),
                vec![Column::Int64(vec![1, 2]), Column::Int64(vec![10, 20])],
            )
            .unwrap(),
        );
        cat
    }

    #[test]
    fn pushes_single_side_conjuncts_below_join() {
        let cat = catalog();
        let plan = PlanBuilder::scan("t")
            .inner_join(PlanBuilder::scan("u"), vec![("a", "x")])
            .filter(col("b").gt(lit(4i64)).and(col("y").lt(lit(15i64))))
            .build();
        let opt = optimize(plan, &cat).unwrap();
        let text = opt.explain();
        // No filter remains above the join; both conjuncts landed below it.
        let join_pos = text.find("Join").unwrap();
        let filters: Vec<usize> = text.match_indices("Filter").map(|(i, _)| i).collect();
        assert_eq!(filters.len(), 2, "expected two pushed filters:\n{text}");
        assert!(filters.iter().all(|&f| f > join_pos), "filters must sit below join:\n{text}");
    }

    #[test]
    fn cross_side_predicates_stay_above() {
        let cat = catalog();
        let plan = PlanBuilder::scan("t")
            .inner_join(PlanBuilder::scan("u"), vec![("a", "x")])
            .filter(col("b").eq(col("y")))
            .build();
        let opt = optimize(plan, &cat).unwrap();
        let text = opt.explain();
        let join_pos = text.find("Join").unwrap();
        let filter_pos = text.find("Filter").unwrap();
        assert!(filter_pos < join_pos, "cross-side filter must stay above join:\n{text}");
    }

    #[test]
    fn pruning_narrows_scans() {
        let cat = catalog();
        let plan = PlanBuilder::scan("t")
            .aggregate(vec![(col("a"), "a")], vec![AggExpr::sum(col("b"), "s")])
            .build();
        let opt = optimize(plan, &cat).unwrap();
        let text = opt.explain();
        assert!(text.contains("Scan t [a, b]"), "scan should project [a, b]:\n{text}");
    }

    #[test]
    fn pruning_keeps_filter_columns() {
        let cat = catalog();
        let plan = PlanBuilder::scan("t")
            .filter(col("c").gt(lit(7i64)))
            .aggregate(vec![], vec![AggExpr::sum(col("a"), "s")])
            .build();
        let opt = optimize(plan, &cat).unwrap();
        let text = opt.explain();
        assert!(text.contains("Scan t [a, c]"), "scan needs filter + agg columns:\n{text}");
    }

    #[test]
    fn optimized_plan_passes_check_and_runs() {
        let cat = catalog();
        let plan = PlanBuilder::scan("t")
            .inner_join(PlanBuilder::scan("u"), vec![("a", "x")])
            .filter(col("b").gt(lit(3i64)))
            .aggregate(vec![], vec![AggExpr::sum(col("y"), "s")])
            .build();
        let opt = optimize(plan.clone(), &cat).unwrap();
        check(&opt, &cat).unwrap();
        let (r1, _) = crate::exec::execute(&plan, &cat).unwrap();
        let (r2, _) = crate::exec::execute(&opt, &cat).unwrap();
        assert_eq!(
            r1.column("s").unwrap().as_i64().unwrap(),
            r2.column("s").unwrap().as_i64().unwrap()
        );
    }

    #[test]
    fn check_rejects_unknown_columns() {
        let cat = catalog();
        let plan = PlanBuilder::scan("t").filter(col("zzz").gt(lit(1i64))).build();
        assert!(check(&plan, &cat).is_err());
    }

    #[test]
    fn split_conjuncts_flattens_and_tree() {
        let e = col("a").gt(lit(1i64)).and(col("b").lt(lit(2i64))).and(col("c").eq(lit(3i64)));
        let mut out = Vec::new();
        split_conjuncts(e, &mut out);
        assert_eq!(out.len(), 3);
    }
}
