//! Scalar expressions and their builder API.
//!
//! Expressions are vectorized column-at-a-time by [`crate::eval`]; this
//! module only defines the tree and convenience constructors. The set of
//! operations is exactly what the 22 TPC-H queries need (DESIGN.md §3).

use std::collections::BTreeSet;
use std::fmt;

use wimpi_storage::{Date32, Decimal64, Value};

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (always produces `Float64`).
    Div,
    /// Equality.
    Eq,
    /// Inequality.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
    /// Logical AND.
    And,
    /// Logical OR.
    Or,
}

impl BinOp {
    /// True for comparison operators (result type `Bool`).
    pub fn is_comparison(self) -> bool {
        matches!(self, BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge)
    }

    /// True for the boolean connectives.
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }
}

/// A scalar expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Reference to a named column of the input relation.
    Col(String),
    /// A literal value.
    Lit(Value),
    /// Binary operation.
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Logical negation.
    Not(Box<Expr>),
    /// SQL LIKE / NOT LIKE over a string expression.
    Like {
        /// String input.
        expr: Box<Expr>,
        /// Pattern with `%`/`_` wildcards.
        pattern: String,
        /// True for NOT LIKE.
        negated: bool,
    },
    /// SQL IN / NOT IN with a literal list.
    InList {
        /// Probe expression.
        expr: Box<Expr>,
        /// Literal candidates.
        list: Vec<Value>,
        /// True for NOT IN.
        negated: bool,
    },
    /// Inclusive BETWEEN over literals.
    Between {
        /// Tested expression.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        low: Value,
        /// Upper bound (inclusive).
        high: Value,
    },
    /// `CASE WHEN cond THEN a ELSE b END`.
    Case {
        /// Condition.
        when: Box<Expr>,
        /// Value when true.
        then: Box<Expr>,
        /// Value when false.
        otherwise: Box<Expr>,
    },
    /// `EXTRACT(YEAR FROM date_expr)` producing `Int32`.
    ExtractYear(Box<Expr>),
    /// `SUBSTRING(expr FROM start FOR len)`, 1-based, producing `Utf8`.
    Substr {
        /// String input.
        expr: Box<Expr>,
        /// 1-based start character.
        start: usize,
        /// Number of characters.
        len: usize,
    },
}

/// References a column.
pub fn col(name: impl Into<String>) -> Expr {
    Expr::Col(name.into())
}

/// Builds a literal from anything convertible to [`Value`].
pub fn lit(v: impl Into<Value>) -> Expr {
    Expr::Lit(v.into())
}

/// A `decimal(_, 2)` literal from a human-readable string, e.g. `dec2("0.06")`.
pub fn dec2(s: &str) -> Expr {
    Expr::Lit(Value::Dec(Decimal64::from_str_scale(s, 2).expect("dec2 literal must parse")))
}

/// A date literal from `YYYY-MM-DD`.
pub fn date(s: &str) -> Expr {
    Expr::Lit(Value::Date(Date32::parse(s).expect("date literal must parse")))
}

// Builder methods intentionally shadow the `std::ops` names (`add`, `mul`,
// `sub`, `div`): they build expression trees, the DataFusion-style API users
// expect.
#[allow(clippy::should_implement_trait)]
impl Expr {
    fn bin(self, op: BinOp, other: Expr) -> Expr {
        Expr::Bin { op, left: Box::new(self), right: Box::new(other) }
    }

    /// `self + other`.
    pub fn add(self, other: Expr) -> Expr {
        self.bin(BinOp::Add, other)
    }

    /// `self - other`.
    pub fn sub(self, other: Expr) -> Expr {
        self.bin(BinOp::Sub, other)
    }

    /// `self * other`.
    pub fn mul(self, other: Expr) -> Expr {
        self.bin(BinOp::Mul, other)
    }

    /// `self / other` (Float64).
    pub fn div(self, other: Expr) -> Expr {
        self.bin(BinOp::Div, other)
    }

    /// `self = other`.
    pub fn eq(self, other: Expr) -> Expr {
        self.bin(BinOp::Eq, other)
    }

    /// `self <> other`.
    pub fn neq(self, other: Expr) -> Expr {
        self.bin(BinOp::Ne, other)
    }

    /// `self < other`.
    pub fn lt(self, other: Expr) -> Expr {
        self.bin(BinOp::Lt, other)
    }

    /// `self <= other`.
    pub fn lte(self, other: Expr) -> Expr {
        self.bin(BinOp::Le, other)
    }

    /// `self > other`.
    pub fn gt(self, other: Expr) -> Expr {
        self.bin(BinOp::Gt, other)
    }

    /// `self >= other`.
    pub fn gte(self, other: Expr) -> Expr {
        self.bin(BinOp::Ge, other)
    }

    /// `self AND other`.
    pub fn and(self, other: Expr) -> Expr {
        self.bin(BinOp::And, other)
    }

    /// `self OR other`.
    pub fn or(self, other: Expr) -> Expr {
        self.bin(BinOp::Or, other)
    }

    /// `NOT self`.
    pub fn negate(self) -> Expr {
        Expr::Not(Box::new(self))
    }

    /// `self LIKE pattern`.
    pub fn like(self, pattern: impl Into<String>) -> Expr {
        Expr::Like { expr: Box::new(self), pattern: pattern.into(), negated: false }
    }

    /// `self NOT LIKE pattern`.
    pub fn not_like(self, pattern: impl Into<String>) -> Expr {
        Expr::Like { expr: Box::new(self), pattern: pattern.into(), negated: true }
    }

    /// `self IN (list)`.
    pub fn in_list(self, list: Vec<Value>) -> Expr {
        Expr::InList { expr: Box::new(self), list, negated: false }
    }

    /// `self NOT IN (list)`.
    pub fn not_in_list(self, list: Vec<Value>) -> Expr {
        Expr::InList { expr: Box::new(self), list, negated: true }
    }

    /// `self BETWEEN low AND high`.
    pub fn between(self, low: impl Into<Value>, high: impl Into<Value>) -> Expr {
        Expr::Between { expr: Box::new(self), low: low.into(), high: high.into() }
    }

    /// `CASE WHEN self THEN then ELSE otherwise END`.
    pub fn case(self, then: Expr, otherwise: Expr) -> Expr {
        Expr::Case { when: Box::new(self), then: Box::new(then), otherwise: Box::new(otherwise) }
    }

    /// `EXTRACT(YEAR FROM self)`.
    pub fn year(self) -> Expr {
        Expr::ExtractYear(Box::new(self))
    }

    /// `SUBSTRING(self FROM start FOR len)` (1-based).
    pub fn substr(self, start: usize, len: usize) -> Expr {
        Expr::Substr { expr: Box::new(self), start, len }
    }

    /// Collects every column name this expression references.
    pub fn columns(&self, out: &mut BTreeSet<String>) {
        match self {
            Expr::Col(n) => {
                out.insert(n.clone());
            }
            Expr::Lit(_) => {}
            Expr::Bin { left, right, .. } => {
                left.columns(out);
                right.columns(out);
            }
            Expr::Not(e) | Expr::ExtractYear(e) => e.columns(out),
            Expr::Like { expr, .. }
            | Expr::InList { expr, .. }
            | Expr::Between { expr, .. }
            | Expr::Substr { expr, .. } => expr.columns(out),
            Expr::Case { when, then, otherwise } => {
                when.columns(out);
                then.columns(out);
                otherwise.columns(out);
            }
        }
    }

    /// Convenience: the referenced columns as a set.
    pub fn column_set(&self) -> BTreeSet<String> {
        let mut s = BTreeSet::new();
        self.columns(&mut s);
        s
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Col(n) => write!(f, "{n}"),
            Expr::Lit(v) => write!(f, "{v}"),
            Expr::Bin { op, left, right } => {
                let sym = match op {
                    BinOp::Add => "+",
                    BinOp::Sub => "-",
                    BinOp::Mul => "*",
                    BinOp::Div => "/",
                    BinOp::Eq => "=",
                    BinOp::Ne => "<>",
                    BinOp::Lt => "<",
                    BinOp::Le => "<=",
                    BinOp::Gt => ">",
                    BinOp::Ge => ">=",
                    BinOp::And => "AND",
                    BinOp::Or => "OR",
                };
                write!(f, "({left} {sym} {right})")
            }
            Expr::Not(e) => write!(f, "NOT {e}"),
            Expr::Like { expr, pattern, negated } => {
                write!(f, "{expr} {}LIKE '{pattern}'", if *negated { "NOT " } else { "" })
            }
            Expr::InList { expr, list, negated } => {
                write!(f, "{expr} {}IN (", if *negated { "NOT " } else { "" })?;
                for (i, v) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
            Expr::Between { expr, low, high } => {
                write!(f, "{expr} BETWEEN {low} AND {high}")
            }
            Expr::Case { when, then, otherwise } => {
                write!(f, "CASE WHEN {when} THEN {then} ELSE {otherwise} END")
            }
            Expr::ExtractYear(e) => write!(f, "EXTRACT(YEAR FROM {e})"),
            Expr::Substr { expr, start, len } => {
                write!(f, "SUBSTRING({expr} FROM {start} FOR {len})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_expected_tree() {
        let e = col("l_quantity").lt(dec2("24"));
        match &e {
            Expr::Bin { op: BinOp::Lt, left, .. } => {
                assert_eq!(**left, Expr::Col("l_quantity".into()));
            }
            other => panic!("unexpected tree: {other:?}"),
        }
    }

    #[test]
    fn column_collection_walks_tree() {
        let e =
            col("a").mul(lit(1i64).sub(col("b"))).add(col("c").year()).and(col("d").like("%x%"));
        let cols = e.column_set();
        assert_eq!(
            cols.into_iter().collect::<Vec<_>>(),
            vec!["a".to_string(), "b".into(), "c".into(), "d".into()]
        );
    }

    #[test]
    fn display_round_trips_operators() {
        let e = col("x").gte(lit(5i64)).and(col("y").neq(lit("A")));
        assert_eq!(e.to_string(), "((x >= 5) AND (y <> A))");
    }

    #[test]
    fn date_and_dec_literals_parse() {
        assert_eq!(date("1994-01-01").to_string(), "1994-01-01");
        assert_eq!(dec2("0.06").to_string(), "0.06");
    }

    #[test]
    fn comparison_classification() {
        assert!(BinOp::Eq.is_comparison());
        assert!(!BinOp::Add.is_comparison());
        assert!(BinOp::And.is_logical());
        assert!(!BinOp::Lt.is_logical());
    }
}
