//! The concurrent query service: overload-safe multi-query execution against
//! one node-wide memory budget.
//!
//! PR 4's [`governor`](crate::governor) makes a *single* query respect the
//! wimpy node's envelope; this module makes *many concurrent* queries respect
//! it together. Two `run_governed` calls with independent budgets can jointly
//! oversubscribe a 1 GB node and reproduce exactly the thrashing death-spiral
//! the paper's §III-C4 failure analysis warns about — so the service owns a
//! single node-wide [`MemoryReservation`] and never lets the sum of running
//! queries' budgets exceed it.
//!
//! ## Admission control
//!
//! Every submission declares a scratch-memory estimate. Admission *carves
//! that grant out of the node reservation before the query starts*, and the
//! query then runs under a private [`QueryContext`] whose budget is the
//! grant — so real reservations are capped per query, grants sum to at most
//! the node budget, and the shared tracker's high-water mark can never pass
//! it. Waiting queries sit in a bounded FIFO queue split into a *small* and
//! a *large* class (by estimate) so cheap choke-point queries are not stuck
//! behind a giant build; a bypass cap (`max_small_bypass`) keeps the large
//! head from starving. When the queue is full, [`Service::submit`] sheds the
//! query with a typed [`ServiceError::Overloaded`] — never a panic, never an
//! unbounded block.
//!
//! ## Retry, backoff, and determinism
//!
//! An attempt that ends in `ResourceExhausted` under its declared grant gets
//! exactly one coordinator-decided retry, re-admitted at the *full node
//! budget* — the same shape as the cluster's `budgeted_retry`: a governed
//! run below physical capacity that lets joins and aggregates degrade to
//! Grace-partitioned builds instead of dying. The retry's backoff delay is
//! capped exponential **in simulated seconds** (pure arithmetic, recorded in
//! the metrics histogram, never slept), exactly like `cluster::faults` — so
//! tests are deterministic and fast.
//!
//! Because a query's budget is decided by the coordinator (declared estimate
//! first, full node budget on the one retry) and never depends on what else
//! is running, every governed run takes a deterministic path: any answer the
//! service completes is bit-exact with the serial unconstrained run, at any
//! worker count and under any interleaving. Concurrency moves *latency and
//! shedding*, never *answers*.
//!
//! ## Terminal outcomes
//!
//! Every submission resolves to exactly one of: an answer, `Overloaded`
//! (shed at submit), `ResourceExhausted` (even the full-budget retry could
//! not fit), or `Cancelled` (token, deadline, or shutdown drain). A panic
//! inside a query is caught, its grant restored, and surfaced as the
//! [`ServiceError::Panicked`] escape hatch rather than poisoning a worker.
//! The accounting identity `submitted = completed + cancelled + exhausted +
//! failed + panicked` holds at quiescence; sheds are counted separately
//! because shed submissions are refused, not accepted.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use wimpi_obs::Registry;
use wimpi_storage::integrity::{chunk_checksum, dict_checksum, IntegrityViolation};
use wimpi_storage::morsel::morsel_ranges;
use wimpi_storage::{Catalog, Column};

use crate::error::EngineError;
use crate::governor::{CancelToken, MemoryReservation, QueryContext, UNLIMITED};

/// Histogram bounds for simulated backoff delays (mirrors the cluster's
/// policy: base 0.05 s doubling to a 1 s cap).
const BACKOFF_BUCKETS: [f64; 5] = [0.05, 0.1, 0.25, 0.5, 1.0];

/// Histogram bounds for admission-wait and submit-to-terminal latency
/// (wall seconds).
const LATENCY_BUCKETS: [f64; 6] = [0.001, 0.01, 0.05, 0.25, 1.0, 10.0];

/// Tuning for a [`Service`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Node-wide scratch budget in bytes shared by every running query
    /// ([`UNLIMITED`] admits any single grant but still arbitrates grants
    /// that cannot coexist arithmetically).
    pub node_budget: u64,
    /// Worker threads — the maximum number of in-flight queries.
    pub workers: usize,
    /// Maximum *waiting* submissions (both classes combined) before
    /// [`Service::submit`] sheds with [`ServiceError::Overloaded`].
    pub queue_depth: usize,
    /// Estimates at or below this many bytes queue in the small class.
    pub small_cutoff: u64,
    /// How many small-class admissions may bypass a waiting large-class head
    /// before the service stops admitting smalls until the head fits.
    pub max_small_bypass: u32,
    /// Base backoff before the budget retry, in simulated seconds.
    pub backoff_base_s: f64,
    /// Cap on the simulated backoff.
    pub backoff_cap_s: f64,
    /// Whether an exhausted attempt gets the one full-node-budget retry.
    pub budget_retry: bool,
    /// Estimate used when a [`QuerySpec`] does not declare one.
    pub default_estimate: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            node_budget: UNLIMITED,
            workers: 4,
            queue_depth: 64,
            small_cutoff: 1 << 20,
            max_small_bypass: 8,
            backoff_base_s: 0.05,
            backoff_cap_s: 1.0,
            budget_retry: true,
            default_estimate: 16 << 20,
        }
    }
}

impl ServiceConfig {
    /// A config with the two knobs that matter most; everything else at the
    /// defaults.
    pub fn new(node_budget: u64, workers: usize) -> Self {
        ServiceConfig { node_budget, workers, ..Self::default() }
    }

    /// Backoff before retry number `attempt` (0-based), in **simulated**
    /// seconds: `base × 2^attempt`, capped. Identical shape to
    /// `cluster::RecoveryPolicy::backoff_s`, and just as deterministic.
    pub fn backoff_s(&self, attempt: u32) -> f64 {
        (self.backoff_base_s * 2f64.powi(attempt.min(30) as i32)).min(self.backoff_cap_s)
    }
}

/// Per-submission declaration: label, scratch estimate, cancellation,
/// optional deadline (measured from *admission*, not submit — queue wait
/// does not burn a query's time budget).
#[derive(Debug, Clone, Default)]
pub struct QuerySpec {
    /// Human-readable name for logs and error messages.
    pub label: String,
    /// Declared/estimated scratch bytes (`None` → the config default). The
    /// grant is clamped to the node budget.
    pub estimate: Option<u64>,
    /// Cooperative cancellation token; cancelling it while queued resolves
    /// the ticket without ever consuming budget.
    pub cancel: CancelToken,
    /// Deadline applied once the query is admitted.
    pub timeout: Option<Duration>,
}

impl QuerySpec {
    /// A spec with the given label and everything else defaulted.
    pub fn new(label: impl Into<String>) -> Self {
        QuerySpec { label: label.into(), ..Self::default() }
    }

    /// Declares the scratch estimate in bytes.
    pub fn with_estimate(mut self, bytes: u64) -> Self {
        self.estimate = Some(bytes);
        self
    }

    /// Attaches an externally owned cancellation token.
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = token;
        self
    }

    /// Gives the query a deadline `timeout` after admission.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = Some(timeout);
        self
    }
}

/// Outcome of one [`Service::scrub`] slice.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Chunk checksums verified in this slice.
    pub checks: u64,
    /// Violations found, each with the owning table named.
    pub violations: Vec<(String, IntegrityViolation)>,
    /// True when this slice reached the end of the catalog and the cursor
    /// wrapped back to the start — one full scrub pass completed.
    pub wrapped: bool,
}

/// Errors a submission can terminate with (beyond the engine's own).
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceError {
    /// The admission queue was full; shed at submit time. `retry_after_hint_s`
    /// is a deterministic simulated-seconds hint derived from the backoff
    /// policy and the momentary queue depth.
    Overloaded {
        /// Waiting submissions at the moment of shedding.
        queue_depth: usize,
        /// Suggested client backoff, in simulated seconds.
        retry_after_hint_s: f64,
    },
    /// The service is draining; no new admissions.
    ShuttingDown,
    /// The query panicked; its grant was restored and the worker survived.
    Panicked(String),
    /// The engine's typed error (`ResourceExhausted`, `Cancelled`, …).
    Engine(EngineError),
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Overloaded { queue_depth, retry_after_hint_s } => write!(
                f,
                "overloaded: {queue_depth} queries queued; retry after ~{retry_after_hint_s}s"
            ),
            ServiceError::ShuttingDown => write!(f, "service is shutting down"),
            ServiceError::Panicked(msg) => write!(f, "query panicked: {msg}"),
            ServiceError::Engine(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EngineError> for ServiceError {
    fn from(e: EngineError) -> Self {
        ServiceError::Engine(e)
    }
}

/// Handle to one submission. Dropping a ticket does not cancel the query;
/// call [`Ticket::cancel`] for that.
pub struct Ticket<T> {
    state: Arc<TicketState<T>>,
    shared: Arc<Shared>,
    cancel: CancelToken,
    id: u64,
}

impl<T> Ticket<T> {
    /// This submission's service-assigned id (for logs).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The cancellation token shared with the running query.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Cancels the submission. A query still waiting in the admission queue
    /// is removed *synchronously* (it never consumes budget — no free worker
    /// is needed); a running query stops cooperatively at its next morsel
    /// boundary.
    pub fn cancel(&self) {
        self.cancel.cancel();
        let removed = {
            let mut st = self.shared.state.lock().unwrap();
            let p = remove_by_id(&mut st, self.id);
            if p.is_some() {
                self.shared.update_queue_gauges(&st);
            }
            p
        };
        if let Some(p) = removed {
            self.shared.metrics.inc("service_cancelled_total", 1);
            (p.resolve_err)(ServiceError::Engine(EngineError::Cancelled));
        }
        self.shared.work.notify_all();
    }

    /// True once the submission reached its terminal outcome.
    pub fn is_done(&self) -> bool {
        self.state.slot.lock().unwrap().is_some()
    }

    /// Blocks until the terminal outcome and returns it.
    pub fn wait(self) -> Result<T, ServiceError> {
        let mut slot = self.state.slot.lock().unwrap();
        while slot.is_none() {
            slot = self.state.cv.wait(slot).unwrap();
        }
        slot.take().expect("guarded by wait")
    }
}

impl<T> std::fmt::Debug for Ticket<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ticket").field("id", &self.id).field("done", &self.is_done()).finish()
    }
}

/// Terminal-outcome slot shared between the ticket and the workers. The
/// first resolution wins; later ones are ignored — which is what guarantees
/// *exactly one* terminal outcome per submission.
struct TicketState<T> {
    slot: Mutex<Option<Result<T, ServiceError>>>,
    cv: Condvar,
}

impl<T> TicketState<T> {
    fn resolve(&self, outcome: Result<T, ServiceError>) {
        let mut slot = self.slot.lock().unwrap();
        if slot.is_none() {
            *slot = Some(outcome);
            self.cv.notify_all();
        }
    }
}

/// How one attempt of a query ended, as seen by the scheduling worker.
enum AttemptEnd {
    /// Outcome already stored in the ticket (answer, cancellation, or a
    /// non-retryable error).
    Resolved(ResolvedKind),
    /// `ResourceExhausted` under this attempt's grant; the coordinator
    /// decides whether the query gets its one full-budget retry.
    Exhausted(EngineError),
    /// Scan-time verification caught silent corruption
    /// (`EngineError::Integrity`); the coordinator may invoke the installed
    /// repairer and grant the one repair-and-retry.
    Corrupted(EngineError),
}

#[derive(Clone, Copy)]
enum ResolvedKind {
    Completed,
    Cancelled,
    Failed,
}

/// One queued submission, type-erased. `run` is re-invocable because the one
/// budget retry re-executes the same closure under a bigger grant.
struct Pending {
    id: u64,
    label: String,
    grant: u64,
    attempt: u32,
    /// Repair-and-retries already spent (capped at one, independently of
    /// the one budget retry `attempt` counts).
    repairs: u32,
    cancel: CancelToken,
    timeout: Option<Duration>,
    submitted: Instant,
    run: Box<dyn Fn(&QueryContext) -> AttemptEnd + Send>,
    resolve_err: Box<dyn FnOnce(ServiceError) + Send>,
}

/// Queue + bookkeeping behind the service mutex.
struct Inner {
    small: VecDeque<Pending>,
    large: VecDeque<Pending>,
    in_flight: usize,
    in_flight_tokens: Vec<(u64, CancelToken)>,
    large_bypass: u32,
    shutdown: bool,
    next_id: u64,
}

/// The pluggable repair hook: receives the `EngineError::Integrity` a query
/// tripped over and returns `true` once the underlying storage has been
/// restored (e.g. the corrupt table regenerated and re-sealed), at which
/// point the coordinator grants the one repair-and-retry.
type Repairer = Arc<dyn Fn(&EngineError) -> bool + Send + Sync>;

struct Shared {
    state: Mutex<Inner>,
    work: Condvar,
    node: MemoryReservation,
    metrics: Registry,
    cfg: ServiceConfig,
    repairer: Mutex<Option<Repairer>>,
    /// Background-scrubber resume point: a flat index into the catalog's
    /// (table, column, chunk) units, persisted across [`Service::scrub`]
    /// slices.
    scrub_cursor: Mutex<u64>,
}

impl Shared {
    fn update_queue_gauges(&self, st: &Inner) {
        let depth = (st.small.len() + st.large.len()) as f64;
        self.metrics.set_gauge("service_queue_depth", depth);
        self.metrics.max_gauge("service_queue_depth_peak", depth);
        self.metrics.set_gauge("service_in_flight", st.in_flight as f64);
        self.metrics.max_gauge("service_in_flight_peak", st.in_flight as f64);
    }
}

/// RAII over the bytes admission carved from the node reservation. Dropping
/// it returns the grant and wakes waiters — including on the unwind path, so
/// a panicking query cannot leak node budget.
struct Grant {
    shared: Arc<Shared>,
    bytes: u64,
}

impl Drop for Grant {
    fn drop(&mut self) {
        self.shared.node.release(self.bytes);
        self.shared.work.notify_all();
    }
}

fn remove_by_id(st: &mut Inner, id: u64) -> Option<Pending> {
    for q in [&mut st.small, &mut st.large] {
        if let Some(pos) = q.iter().position(|p| p.id == id) {
            return q.remove(pos);
        }
    }
    None
}

/// The concurrent query service. Owns the node-wide reservation, the
/// admission queue, and the worker pool; see the module docs for semantics.
///
/// The service is `Sync`: clients on many threads may [`Service::submit`]
/// through a shared reference (or an `Arc<Service>`) while another thread
/// calls [`Service::shutdown`] — the shutdown flag, the queue drain, and
/// every admission decision happen under one state lock, so a submission
/// racing shutdown either loses the race (typed [`ServiceError::ShuttingDown`],
/// no ticket exists) or wins it (its ticket resolves exactly once as
/// `Cancelled` by the drain). A ticket can never be left unresolved.
pub struct Service {
    shared: Arc<Shared>,
    /// Joined (and emptied) by [`Service::shutdown`]; behind a mutex so
    /// shutdown works through `&self` and is idempotent under concurrency.
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Service {
    /// Starts a service with `cfg.workers` worker threads (at least one).
    pub fn new(cfg: ServiceConfig) -> Self {
        let workers = cfg.workers.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(Inner {
                small: VecDeque::new(),
                large: VecDeque::new(),
                in_flight: 0,
                in_flight_tokens: Vec::new(),
                large_bypass: 0,
                shutdown: false,
                next_id: 0,
            }),
            work: Condvar::new(),
            node: MemoryReservation::with_budget(cfg.node_budget),
            metrics: Registry::new(),
            cfg,
            repairer: Mutex::new(None),
            scrub_cursor: Mutex::new(0),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("wimpi-service-{i}"))
                    .spawn(move || worker_loop(shared))
                    .expect("worker thread spawns")
            })
            .collect();
        Service { shared, workers: Mutex::new(handles) }
    }

    /// Submits a query. `f` runs on a worker under a [`QueryContext`] whose
    /// budget is the admitted grant (declared estimate, clamped to the node
    /// budget); it may run twice when the one budget retry engages, so it
    /// must be a pure function of the context. Returns the ticket, or sheds
    /// with [`ServiceError::Overloaded`] when the queue is full.
    pub fn submit<T, F>(&self, spec: QuerySpec, f: F) -> Result<Ticket<T>, ServiceError>
    where
        T: Send + 'static,
        F: Fn(&QueryContext) -> crate::error::Result<T> + Send + 'static,
    {
        let cfg = &self.shared.cfg;
        let grant = spec.estimate.unwrap_or(cfg.default_estimate).max(1).min(cfg.node_budget);
        let state = Arc::new(TicketState { slot: Mutex::new(None), cv: Condvar::new() });
        let run_state = Arc::clone(&state);
        let run = Box::new(move |ctx: &QueryContext| match f(ctx) {
            Ok(v) => {
                run_state.resolve(Ok(v));
                AttemptEnd::Resolved(ResolvedKind::Completed)
            }
            Err(e @ EngineError::ResourceExhausted { .. }) => AttemptEnd::Exhausted(e),
            Err(e @ EngineError::Integrity { .. }) => AttemptEnd::Corrupted(e),
            Err(EngineError::Cancelled) => {
                run_state.resolve(Err(ServiceError::Engine(EngineError::Cancelled)));
                AttemptEnd::Resolved(ResolvedKind::Cancelled)
            }
            Err(e) => {
                run_state.resolve(Err(ServiceError::Engine(e)));
                AttemptEnd::Resolved(ResolvedKind::Failed)
            }
        });
        let err_state = Arc::clone(&state);
        let resolve_err = Box::new(move |e: ServiceError| err_state.resolve(Err(e)));

        let mut st = self.shared.state.lock().unwrap();
        if st.shutdown {
            return Err(ServiceError::ShuttingDown);
        }
        let depth = st.small.len() + st.large.len();
        if depth >= cfg.queue_depth {
            self.shared.metrics.inc("service_shed_total", 1);
            return Err(ServiceError::Overloaded {
                queue_depth: depth,
                retry_after_hint_s: (cfg.backoff_base_s * depth as f64).min(cfg.backoff_cap_s),
            });
        }
        let id = st.next_id;
        st.next_id += 1;
        let pending = Pending {
            id,
            label: spec.label,
            grant,
            attempt: 0,
            repairs: 0,
            cancel: spec.cancel.clone(),
            timeout: spec.timeout,
            submitted: Instant::now(),
            run,
            resolve_err,
        };
        if grant <= cfg.small_cutoff {
            st.small.push_back(pending);
        } else {
            st.large.push_back(pending);
        }
        self.shared.metrics.inc("service_submitted_total", 1);
        self.shared.update_queue_gauges(&st);
        drop(st);
        self.shared.work.notify_all();
        Ok(Ticket { state, shared: Arc::clone(&self.shared), cancel: spec.cancel, id })
    }

    /// [`submit`](Service::submit) + [`Ticket::wait`].
    pub fn run_blocking<T, F>(&self, spec: QuerySpec, f: F) -> Result<T, ServiceError>
    where
        T: Send + 'static,
        F: Fn(&QueryContext) -> crate::error::Result<T> + Send + 'static,
    {
        self.submit(spec, f)?.wait()
    }

    /// Queue-depth/in-flight/shed/retry counters, latency histograms, and
    /// the simulated-backoff histogram.
    pub fn metrics(&self) -> &Registry {
        &self.shared.metrics
    }

    /// Waiting submissions right now (both classes).
    pub fn queue_depth(&self) -> usize {
        let st = self.shared.state.lock().unwrap();
        st.small.len() + st.large.len()
    }

    /// Admitted queries currently executing.
    pub fn in_flight(&self) -> usize {
        self.shared.state.lock().unwrap().in_flight
    }

    /// Bytes of grant currently carved out of the node reservation.
    pub fn node_used(&self) -> u64 {
        self.shared.node.used()
    }

    /// The node reservation's high-water mark — by construction never above
    /// the configured node budget.
    pub fn node_high_water(&self) -> u64 {
        self.shared.node.high_water()
    }

    /// The configured node budget.
    pub fn node_budget(&self) -> u64 {
        self.shared.cfg.node_budget
    }

    /// Installs (or replaces) the integrity repairer: a hook the
    /// coordinator invokes when a query's scan trips an
    /// [`EngineError::Integrity`]. Returning `true` means the storage was
    /// restored and the query earns its one repair-and-retry; `false` (or
    /// no hook) fails the query with the typed error.
    pub fn set_repairer<F>(&self, f: F)
    where
        F: Fn(&EngineError) -> bool + Send + Sync + 'static,
    {
        *self.shared.repairer.lock().unwrap() = Some(Arc::new(f));
    }

    /// One cooperative slice of the background scrubber: verifies up to
    /// `max_chunks` sealed chunk checksums against `catalog`'s resident
    /// bytes, resuming where the previous slice stopped (the cursor
    /// persists across calls and wraps at the end of the catalog).
    ///
    /// Runs under the caller's [`QueryContext`], so the governor's
    /// cancellation token and deadline apply at chunk granularity — a
    /// scrubber sharing a node with foreground queries yields at the next
    /// chunk boundary, and progress made before an interruption is kept.
    /// Checks and violations are folded into `integrity_checks_total` /
    /// `integrity_failures_total`.
    pub fn scrub(
        &self,
        catalog: &Catalog,
        max_chunks: u64,
        ctx: &QueryContext,
    ) -> crate::error::Result<ScrubReport> {
        // Flat, deterministic unit list: every (table, column, data chunk)
        // plus each dictionary pseudo-chunk, in catalog (sorted) order.
        let mut units: Vec<(String, usize, usize)> = Vec::new();
        for name in catalog.names() {
            let t = catalog.table(name)?;
            let Some(m) = t.manifest() else { continue };
            for (ci, f) in t.schema().fields().iter().enumerate() {
                let Some(sealed) = m.column(&f.name) else { continue };
                for chunk in 0..sealed.chunks.len() {
                    units.push((name.to_string(), ci, chunk));
                }
                if sealed.dict.is_some() {
                    units.push((name.to_string(), ci, sealed.chunks.len()));
                }
            }
        }
        let mut report = ScrubReport::default();
        if units.is_empty() {
            return Ok(report);
        }
        let mut cursor = self.shared.scrub_cursor.lock().unwrap();
        let start = (*cursor as usize) % units.len();
        let outcome = (|| {
            for i in 0..(max_chunks as usize).min(units.len()) {
                ctx.checkpoint()?;
                let (name, ci, chunk) = &units[(start + i) % units.len()];
                let t = catalog.table(name)?;
                let m = t.manifest().expect("unit listed only for sealed tables");
                let col = t.column(*ci);
                let field = &t.schema().fields()[*ci];
                let sealed = m.column(&field.name).expect("unit listed only for sealed columns");
                let (expected, actual) = if *chunk == sealed.chunks.len() {
                    let d = match col.as_ref() {
                        Column::Str(d) => d,
                        _ => unreachable!("dict pseudo-chunk implies a Str column"),
                    };
                    (sealed.dict.unwrap_or(0), dict_checksum(d))
                } else {
                    let r = morsel_ranges(col.len(), m.chunk_rows())
                        .get(*chunk)
                        .cloned()
                        .unwrap_or(0..0);
                    (sealed.chunks[*chunk], chunk_checksum(col.as_ref(), r))
                };
                report.checks += 1;
                if expected != actual {
                    report.violations.push((
                        name.clone(),
                        IntegrityViolation {
                            column: field.name.clone(),
                            chunk: *chunk,
                            expected,
                            actual,
                        },
                    ));
                }
                let next = (start + i + 1) % units.len();
                if next == 0 {
                    report.wrapped = true;
                }
                *cursor = next as u64;
            }
            Ok(())
        })();
        self.shared.metrics.inc("integrity_checks_total", report.checks);
        if !report.violations.is_empty() {
            self.shared.metrics.inc("integrity_failures_total", report.violations.len() as u64);
        }
        outcome.map(|()| report)
    }

    /// Stops admissions, resolves every queued submission as `Cancelled`,
    /// cancels in-flight queries cooperatively, and joins the workers.
    /// Idempotent, safe to race against concurrent [`Service::submit`]s
    /// (see the type docs), and also runs on drop. After it returns, the
    /// metrics snapshot and the node accounting are quiescent (every grant
    /// returned) and the ledger identity `submitted = completed + cancelled
    /// + exhausted + failed + panicked` holds.
    pub fn shutdown(&self) {
        // Flag, token cancellation, and drain are one critical section on
        // the state lock — the same lock `submit` holds while it checks the
        // flag and enqueues. A racing submit therefore either observes
        // `shutdown` (typed refusal, no ticket) or enqueued before the
        // drain (its pending is drained here and resolved `Cancelled`).
        // Nothing can slip in between: after this section every future
        // submit is refused, so the queues stay empty and the workers'
        // exit condition (`shutdown && queues empty`) is stable.
        let drained = {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
            for (_, token) in &st.in_flight_tokens {
                token.cancel();
            }
            let mut drained: Vec<Pending> = st.small.drain(..).collect();
            drained.extend(st.large.drain(..));
            self.shared.update_queue_gauges(&st);
            drained
        };
        for p in drained {
            self.shared.metrics.inc("service_cancelled_total", 1);
            (p.resolve_err)(ServiceError::Engine(EngineError::Cancelled));
        }
        self.shared.work.notify_all();
        // Take the handles out under their own lock so concurrent shutdown
        // calls are idempotent (each handle is joined exactly once), then
        // join outside it — joining can block on in-flight queries.
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.workers.lock().unwrap());
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Picks the next admissible query under the class policy and carves its
/// grant. Small-first FIFO until the large head has been bypassed
/// `max_small_bypass` times; then large-only until that head admits, so big
/// queries cannot starve behind a stream of small ones.
fn admit_one(shared: &Arc<Shared>, st: &mut Inner) -> Option<(Pending, Grant)> {
    let small_first = st.large.front().is_none() || st.large_bypass < shared.cfg.max_small_bypass;
    let classes: &[bool] = if small_first { &[true, false] } else { &[false] };
    for &small in classes {
        let queue = if small { &mut st.small } else { &mut st.large };
        let Some(front) = queue.front() else { continue };
        if !shared.node.try_reserve(front.grant) {
            // Head-of-line within the class keeps FIFO honest; try the other
            // class (when allowed) rather than scanning deeper.
            continue;
        }
        let p = queue.pop_front().expect("front exists");
        if small && !st.large.is_empty() {
            st.large_bypass += 1;
        } else if !small {
            st.large_bypass = 0;
        }
        st.in_flight += 1;
        st.in_flight_tokens.push((p.id, p.cancel.clone()));
        shared.metrics.inc("service_admitted_total", 1);
        shared.metrics.observe(
            "service_wait_seconds",
            &LATENCY_BUCKETS,
            p.submitted.elapsed().as_secs_f64(),
        );
        shared.update_queue_gauges(st);
        let grant = Grant { shared: Arc::clone(shared), bytes: p.grant };
        return Some((p, grant));
    }
    None
}

/// Sweeps externally cancelled submissions out of both queues, resolving
/// each as `Cancelled` without ever reserving its grant. (Cancellation via
/// [`Ticket::cancel`] removes the entry synchronously; this sweep catches
/// tokens cancelled directly.)
fn purge_cancelled(shared: &Shared, st: &mut Inner) {
    let mut removed = Vec::new();
    for q in [&mut st.small, &mut st.large] {
        let mut i = 0;
        while i < q.len() {
            if q[i].cancel.is_cancelled() {
                removed.push(q.remove(i).expect("index checked"));
            } else {
                i += 1;
            }
        }
    }
    if !removed.is_empty() {
        shared.update_queue_gauges(st);
    }
    for p in removed {
        shared.metrics.inc("service_cancelled_total", 1);
        (p.resolve_err)(ServiceError::Engine(EngineError::Cancelled));
    }
}

fn worker_loop(shared: Arc<Shared>) {
    loop {
        let admitted = {
            let mut st = shared.state.lock().unwrap();
            loop {
                purge_cancelled(&shared, &mut st);
                if let Some(pair) = admit_one(&shared, &mut st) {
                    break Some(pair);
                }
                if st.shutdown && st.small.is_empty() && st.large.is_empty() {
                    break None;
                }
                // The timeout is belt-and-braces against a lost wakeup (e.g.
                // an external token cancelled without nudging the service).
                let (next, _) = shared.work.wait_timeout(st, Duration::from_millis(50)).unwrap();
                st = next;
            }
        };
        let Some((pending, grant)) = admitted else { return };
        run_admitted(&shared, pending, grant);
    }
}

/// Runs one admitted attempt and routes its end: resolve, or re-queue for
/// the single full-budget retry.
fn run_admitted(shared: &Arc<Shared>, p: Pending, grant: Grant) {
    let mut ctx = QueryContext::with_budget(p.grant).with_cancel_token(p.cancel.clone());
    if let Some(t) = p.timeout {
        ctx = ctx.with_timeout(t);
    }
    let end = catch_unwind(AssertUnwindSafe(|| (p.run)(&ctx)));
    let checks = ctx.integrity_checks();
    if checks > 0 {
        shared.metrics.inc("integrity_checks_total", checks);
    }
    drop(ctx);

    match end {
        Err(payload) => {
            drop(grant);
            shared.metrics.inc("service_panicked_total", 1);
            let msg = format!("{}: {}", p.label, panic_message(payload.as_ref()));
            (p.resolve_err)(ServiceError::Panicked(msg));
            finish_in_flight(shared, p.id, p.submitted);
        }
        Ok(AttemptEnd::Resolved(kind)) => {
            drop(grant);
            let counter = match kind {
                ResolvedKind::Completed => "service_completed_total",
                ResolvedKind::Cancelled => "service_cancelled_total",
                ResolvedKind::Failed => "service_failed_total",
            };
            shared.metrics.inc(counter, 1);
            finish_in_flight(shared, p.id, p.submitted);
        }
        Ok(AttemptEnd::Exhausted(err)) => {
            drop(grant); // return the declared carve before re-admission
            let retry = p.attempt == 0
                && shared.cfg.budget_retry
                && p.grant < shared.cfg.node_budget
                && !p.cancel.is_cancelled();
            if retry {
                let backoff = shared.cfg.backoff_s(p.attempt);
                shared.metrics.inc("service_retries_total", 1);
                shared.metrics.observe("service_backoff_sim_seconds", &BACKOFF_BUCKETS, backoff);
                let retried =
                    Pending { attempt: p.attempt + 1, grant: shared.cfg.node_budget, ..p };
                let mut st = shared.state.lock().unwrap();
                st.in_flight -= 1;
                st.in_flight_tokens.retain(|(id, _)| *id != retried.id);
                if st.shutdown {
                    shared.update_queue_gauges(&st);
                    drop(st);
                    shared.metrics.inc("service_cancelled_total", 1);
                    (retried.resolve_err)(ServiceError::Engine(EngineError::Cancelled));
                } else {
                    // The retried query has already waited its turn once:
                    // re-admit it at the head of the big-query class.
                    st.large.push_front(retried);
                    shared.update_queue_gauges(&st);
                    drop(st);
                    shared.work.notify_all();
                }
            } else {
                shared.metrics.inc("service_exhausted_total", 1);
                (p.resolve_err)(ServiceError::Engine(err));
                finish_in_flight(shared, p.id, p.submitted);
            }
        }
        Ok(AttemptEnd::Corrupted(err)) => {
            drop(grant);
            shared.metrics.inc("integrity_failures_total", 1);
            let repairer = shared.repairer.lock().unwrap().clone();
            let eligible = p.repairs == 0 && !p.cancel.is_cancelled();
            let repaired = match (repairer, eligible) {
                (Some(repair), true) => {
                    let started = Instant::now();
                    let ok = repair(&err);
                    if ok {
                        shared.metrics.inc("integrity_repairs_total", 1);
                        shared.metrics.observe(
                            "integrity_repair_seconds",
                            &LATENCY_BUCKETS,
                            started.elapsed().as_secs_f64(),
                        );
                    }
                    ok
                }
                _ => false,
            };
            if repaired {
                // One repair-and-retry, mirroring the budget retry's shape:
                // simulated backoff, then head-of-class re-admission with
                // the same grant (the query's memory needs didn't change).
                let backoff = shared.cfg.backoff_s(p.repairs);
                shared.metrics.observe("service_backoff_sim_seconds", &BACKOFF_BUCKETS, backoff);
                let retried = Pending { repairs: p.repairs + 1, ..p };
                let mut st = shared.state.lock().unwrap();
                st.in_flight -= 1;
                st.in_flight_tokens.retain(|(id, _)| *id != retried.id);
                if st.shutdown {
                    shared.update_queue_gauges(&st);
                    drop(st);
                    shared.metrics.inc("service_cancelled_total", 1);
                    (retried.resolve_err)(ServiceError::Engine(EngineError::Cancelled));
                } else {
                    if retried.grant <= shared.cfg.small_cutoff {
                        st.small.push_front(retried);
                    } else {
                        st.large.push_front(retried);
                    }
                    shared.update_queue_gauges(&st);
                    drop(st);
                    shared.work.notify_all();
                }
            } else {
                // No repairer, repair refused, or the one repair already
                // spent: surface the typed error.
                shared.metrics.inc("service_failed_total", 1);
                (p.resolve_err)(ServiceError::Engine(err));
                finish_in_flight(shared, p.id, p.submitted);
            }
        }
    }
}

fn finish_in_flight(shared: &Shared, id: u64, submitted: Instant) {
    shared.metrics.observe(
        "service_latency_seconds",
        &LATENCY_BUCKETS,
        submitted.elapsed().as_secs_f64(),
    );
    let mut st = shared.state.lock().unwrap();
    st.in_flight -= 1;
    st.in_flight_tokens.retain(|(tid, _)| *tid != id);
    shared.update_queue_gauges(&st);
    drop(st);
    shared.work.notify_all();
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::mpsc;

    fn tiny(workers: usize, node_budget: u64, queue_depth: usize) -> Service {
        Service::new(ServiceConfig {
            workers,
            node_budget,
            queue_depth,
            small_cutoff: 256,
            ..ServiceConfig::default()
        })
    }

    /// A job that blocks until the returned sender is dropped or pinged,
    /// flagging `ran` as soon as it starts.
    fn gate_job(
        ran: Arc<AtomicU32>,
    ) -> (mpsc::Sender<()>, impl Fn(&QueryContext) -> crate::error::Result<u32> + Send + 'static)
    {
        let (tx, rx) = mpsc::channel::<()>();
        let rx = Mutex::new(rx);
        let job = move |_ctx: &QueryContext| {
            ran.fetch_add(1, Ordering::SeqCst);
            let _ = rx.lock().unwrap().recv();
            Ok(0u32)
        };
        (tx, job)
    }

    fn spin_until_running(ran: &AtomicU32) {
        while ran.load(Ordering::SeqCst) == 0 {
            std::thread::yield_now();
        }
    }

    #[test]
    fn completes_a_simple_query_and_counts_it() {
        let svc = tiny(2, 1000, 8);
        let out = svc
            .run_blocking(QuerySpec::new("q").with_estimate(100), |ctx| {
                let _g = ctx.reserve(80, "stub")?;
                Ok(41 + 1)
            })
            .expect("runs");
        assert_eq!(out, 42);
        svc.shutdown();
        assert_eq!(svc.metrics().counter("service_completed_total"), 1);
        assert_eq!(svc.metrics().counter("service_submitted_total"), 1);
        assert_eq!(svc.node_used(), 0, "grant fully returned");
        assert!(svc.node_high_water() <= 1000);
    }

    #[test]
    fn exhausted_attempt_gets_one_full_budget_retry() {
        let svc = tiny(1, 1000, 8);
        let attempts = Arc::new(AtomicU32::new(0));
        let a = Arc::clone(&attempts);
        let out = svc
            .run_blocking(QuerySpec::new("retry").with_estimate(100), move |ctx| {
                a.fetch_add(1, Ordering::SeqCst);
                let _g = ctx.reserve(500, "stub")?; // needs 500 > 100, <= 1000
                Ok(7u32)
            })
            .expect("retry at node budget succeeds");
        assert_eq!(out, 7);
        assert_eq!(attempts.load(Ordering::SeqCst), 2, "exactly one retry");
        svc.shutdown();
        assert_eq!(svc.metrics().counter("service_retries_total"), 1);
        assert_eq!(svc.metrics().counter("service_completed_total"), 1);
        assert_eq!(svc.metrics().counter("service_exhausted_total"), 0);
    }

    #[test]
    fn exhaustion_at_full_budget_is_final_and_typed() {
        let svc = tiny(1, 1000, 8);
        let attempts = Arc::new(AtomicU32::new(0));
        let a = Arc::clone(&attempts);
        let err = svc
            .run_blocking(QuerySpec::new("hopeless").with_estimate(100), move |ctx| {
                a.fetch_add(1, Ordering::SeqCst);
                ctx.reserve(2000, "stub").map(|_| 0u32) // > node budget, ever
            })
            .unwrap_err();
        match err {
            ServiceError::Engine(EngineError::ResourceExhausted { requested, budget, .. }) => {
                assert_eq!(requested, 2000);
                assert_eq!(budget, 1000, "final error reports the full-budget attempt");
            }
            other => panic!("expected ResourceExhausted, got {other:?}"),
        }
        assert_eq!(attempts.load(Ordering::SeqCst), 2, "one declared + one retry");
        svc.shutdown();
        assert_eq!(svc.metrics().counter("service_exhausted_total"), 1);
        assert_eq!(svc.node_used(), 0);
    }

    #[test]
    fn full_queue_sheds_with_typed_overload() {
        let svc = tiny(1, 1000, 1);
        let ran = Arc::new(AtomicU32::new(0));
        let (gate, job) = gate_job(Arc::clone(&ran));
        let busy = svc.submit(QuerySpec::new("busy").with_estimate(100), job).expect("admits");
        spin_until_running(&ran);
        let queued =
            svc.submit(QuerySpec::new("waits").with_estimate(100), |_| Ok(1u32)).expect("queues");
        let shed = svc.submit(QuerySpec::new("shed").with_estimate(100), |_| Ok(2u32));
        match shed {
            Err(ServiceError::Overloaded { queue_depth, retry_after_hint_s }) => {
                assert_eq!(queue_depth, 1);
                assert!(retry_after_hint_s > 0.0);
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
        assert_eq!(svc.metrics().counter("service_shed_total"), 1);
        drop(gate);
        assert_eq!(busy.wait().expect("gated job finishes"), 0);
        assert_eq!(queued.wait().expect("queued job runs"), 1);
        svc.shutdown();
    }

    #[test]
    fn ticket_cancel_removes_queued_query_immediately() {
        let svc = tiny(1, 1000, 8);
        let ran = Arc::new(AtomicU32::new(0));
        let (gate, job) = gate_job(Arc::clone(&ran));
        let busy = svc.submit(QuerySpec::new("busy").with_estimate(900), job).expect("admits");
        spin_until_running(&ran);
        let never = Arc::new(AtomicU32::new(0));
        let n = Arc::clone(&never);
        let waiting = svc
            .submit(QuerySpec::new("doomed").with_estimate(500), move |_| {
                n.fetch_add(1, Ordering::SeqCst);
                Ok(0u32)
            })
            .expect("queues");
        assert_eq!(svc.queue_depth(), 1);
        waiting.cancel();
        // Removal is synchronous — no worker needs to be free.
        assert_eq!(svc.queue_depth(), 0);
        match waiting.wait() {
            Err(ServiceError::Engine(EngineError::Cancelled)) => {}
            other => panic!("cancelled ticket must resolve Cancelled, got {other:?}"),
        }
        drop(gate);
        busy.wait().expect("gated job finishes");
        assert_eq!(never.load(Ordering::SeqCst), 0, "cancelled query never ran");
        svc.shutdown();
        assert_eq!(svc.metrics().counter("service_cancelled_total"), 1);
        assert_eq!(svc.node_high_water(), 900, "the cancelled grant was never reserved");
    }

    #[test]
    fn shutdown_drains_queue_as_cancelled_and_joins() {
        let svc = tiny(1, 1000, 8);
        let started = Arc::new(AtomicU32::new(0));
        let s = Arc::clone(&started);
        // A cooperative in-flight query: spins until its token fires.
        let busy = svc
            .submit(
                QuerySpec::new("busy").with_estimate(900),
                move |ctx| -> crate::error::Result<u32> {
                    s.fetch_add(1, Ordering::SeqCst);
                    loop {
                        if ctx.interrupted() {
                            return Err(EngineError::Cancelled);
                        }
                        std::thread::yield_now();
                    }
                },
            )
            .expect("admits");
        spin_until_running(&started);
        let queued =
            svc.submit(QuerySpec::new("queued").with_estimate(500), |_| Ok(0u32)).expect("queues");
        svc.shutdown();
        for outcome in [busy.wait().map(|_| ()), queued.wait().map(|_| ())] {
            match outcome {
                Err(ServiceError::Engine(EngineError::Cancelled)) => {}
                other => panic!("drained query must resolve Cancelled, got {other:?}"),
            }
        }
        assert_eq!(svc.metrics().counter("service_cancelled_total"), 2);
        assert_eq!(svc.node_used(), 0);
    }

    #[test]
    fn submit_after_shutdown_is_rejected() {
        let svc = tiny(1, 1000, 8);
        svc.shutdown();
        let err = svc.submit(QuerySpec::new("late"), |_| Ok(0u32)).map(|_| ()).unwrap_err();
        match err {
            ServiceError::ShuttingDown => {}
            other => panic!("expected ShuttingDown, got {other:?}"),
        }
    }

    #[test]
    fn panicking_query_restores_grant_and_surfaces_typed_error() {
        let svc = tiny(1, 1000, 8);
        let err = svc
            .run_blocking(
                QuerySpec::new("boom").with_estimate(600),
                |_ctx| -> crate::error::Result<u32> { panic!("operator blew up") },
            )
            .unwrap_err();
        match err {
            ServiceError::Panicked(msg) => {
                assert!(msg.contains("operator blew up") && msg.contains("boom"))
            }
            other => panic!("expected Panicked, got {other:?}"),
        }
        // The worker survived: the service still runs queries.
        let out = svc.run_blocking(QuerySpec::new("after"), |_| Ok(5u32)).expect("still alive");
        assert_eq!(out, 5);
        svc.shutdown();
        assert_eq!(svc.node_used(), 0, "grant restored after panic");
        assert_eq!(svc.metrics().counter("service_panicked_total"), 1);
    }

    #[test]
    fn small_class_bypasses_large_but_not_forever() {
        let svc = Service::new(ServiceConfig {
            workers: 1,
            node_budget: 1000,
            queue_depth: 64,
            small_cutoff: 100,
            max_small_bypass: 2,
            ..ServiceConfig::default()
        });
        let order = Arc::new(Mutex::new(Vec::new()));
        let ran = Arc::new(AtomicU32::new(0));
        let (gate, job) = gate_job(Arc::clone(&ran));
        let busy = svc.submit(QuerySpec::new("busy").with_estimate(50), job).expect("admits");
        spin_until_running(&ran);
        // While the single worker is pinned: queue one large then several
        // smalls. With max_small_bypass = 2, execution must go s1, s2, L, s3.
        let mut tickets = Vec::new();
        for (label, est) in [("L", 900u64), ("s1", 10), ("s2", 10), ("s3", 10)] {
            let o = Arc::clone(&order);
            tickets.push(
                svc.submit(QuerySpec::new(label).with_estimate(est), move |_| {
                    o.lock().unwrap().push(label);
                    Ok(0u32)
                })
                .expect("queues"),
            );
        }
        drop(gate);
        busy.wait().expect("gated job finishes");
        for t in tickets {
            t.wait().expect("all queued queries run");
        }
        let got = order.lock().unwrap().clone();
        assert_eq!(got, vec!["s1", "s2", "L", "s3"], "bypass cap admits the large head");
        svc.shutdown();
    }

    #[test]
    fn backoff_is_deterministic_and_capped() {
        let cfg = ServiceConfig::default();
        assert_eq!(cfg.backoff_s(0), 0.05);
        assert_eq!(cfg.backoff_s(1), 0.1);
        assert!(cfg.backoff_s(30) <= cfg.backoff_cap_s);
        assert_eq!(cfg.backoff_s(2), cfg.backoff_s(2), "pure function of attempt");
    }

    #[test]
    fn concurrent_grants_never_oversubscribe_the_node() {
        let budget = 1 << 20;
        let svc = tiny(4, budget, 64);
        let mut tickets = Vec::new();
        for i in 0..32u64 {
            let bytes = (i % 7 + 1) * 100_000;
            tickets.push(
                svc.submit(QuerySpec::new(format!("q{i}")).with_estimate(bytes), move |ctx| {
                    let _g = ctx.reserve(bytes, "stub")?;
                    Ok(bytes)
                })
                .expect("queue is deep enough"),
            );
        }
        for t in tickets {
            t.wait().expect("fits");
        }
        svc.shutdown();
        assert!(svc.node_high_water() <= budget, "admission arbitration must hold the line");
        assert_eq!(svc.node_used(), 0);
        assert_eq!(svc.metrics().counter("service_completed_total"), 32);
    }

    fn integrity_err() -> EngineError {
        EngineError::Integrity {
            table: "t".into(),
            column: "k".into(),
            chunk: 0,
            expected: 1,
            actual: 2,
        }
    }

    #[test]
    fn corrupted_query_gets_one_repair_and_retry() {
        let svc = tiny(1, 1000, 8);
        let repaired = Arc::new(AtomicU32::new(0));
        let hook_flag = Arc::clone(&repaired);
        svc.set_repairer(move |e| {
            assert!(matches!(e, EngineError::Integrity { .. }));
            hook_flag.fetch_add(1, Ordering::SeqCst);
            true
        });
        let probe = Arc::clone(&repaired);
        let out = svc
            .run_blocking(QuerySpec::new("q").with_estimate(100), move |_ctx| {
                if probe.load(Ordering::SeqCst) == 0 {
                    Err(integrity_err())
                } else {
                    Ok(7u32)
                }
            })
            .expect("repair-and-retry succeeds");
        assert_eq!(out, 7);
        assert_eq!(repaired.load(Ordering::SeqCst), 1, "repairer ran exactly once");
        svc.shutdown();
        let m = svc.metrics();
        assert_eq!(m.counter("integrity_failures_total"), 1);
        assert_eq!(m.counter("integrity_repairs_total"), 1);
        assert_eq!(m.counter("service_completed_total"), 1);
        assert_eq!(m.counter("service_failed_total"), 0);
        assert!(m.render().contains("integrity_repair_seconds"));
    }

    #[test]
    fn corruption_without_a_repairer_fails_typed() {
        let svc = tiny(1, 1000, 8);
        let err = svc
            .run_blocking(QuerySpec::new("q").with_estimate(100), |_ctx| {
                Err::<u32, _>(integrity_err())
            })
            .expect_err("no repairer installed");
        assert!(matches!(err, ServiceError::Engine(EngineError::Integrity { .. })), "{err}");
        svc.shutdown();
        assert_eq!(svc.metrics().counter("integrity_failures_total"), 1);
        assert_eq!(svc.metrics().counter("integrity_repairs_total"), 0);
        assert_eq!(svc.metrics().counter("service_failed_total"), 1);
    }

    #[test]
    fn persistent_corruption_is_repaired_at_most_once() {
        let svc = tiny(1, 1000, 8);
        let repairs = Arc::new(AtomicU32::new(0));
        let hook_flag = Arc::clone(&repairs);
        svc.set_repairer(move |_| {
            hook_flag.fetch_add(1, Ordering::SeqCst);
            true
        });
        let err = svc
            .run_blocking(QuerySpec::new("q").with_estimate(100), |_ctx| {
                // Keeps failing even after the "repair": the coordinator
                // must not loop.
                Err::<u32, _>(integrity_err())
            })
            .expect_err("second corruption is terminal");
        assert!(matches!(err, ServiceError::Engine(EngineError::Integrity { .. })), "{err}");
        assert_eq!(repairs.load(Ordering::SeqCst), 1);
        svc.shutdown();
        assert_eq!(svc.metrics().counter("integrity_failures_total"), 2);
        assert_eq!(svc.metrics().counter("integrity_repairs_total"), 1);
        assert_eq!(svc.metrics().counter("service_failed_total"), 1);
    }

    fn sealed_scrub_catalog(rows: usize) -> Catalog {
        use wimpi_storage::{DataType, Field, Schema, Table};
        let schema =
            Schema::new(vec![Field::new("k", DataType::Int64), Field::new("v", DataType::Int64)]);
        let t = Table::new(
            schema,
            vec![
                Column::Int64((0..rows as i64).collect()),
                Column::Int64((0..rows as i64).map(|x| x * 3).collect()),
            ],
        )
        .unwrap()
        .with_integrity();
        let mut cat = Catalog::new();
        cat.register("t", t);
        cat
    }

    #[test]
    fn scrubber_passes_a_clean_catalog_and_wraps() {
        let svc = tiny(1, 1000, 8);
        let cat = sealed_scrub_catalog(100);
        let ctx = QueryContext::new();
        let r = svc.scrub(&cat, 64, &ctx).unwrap();
        assert_eq!(r.checks, 2, "two columns, one chunk each");
        assert!(r.violations.is_empty());
        assert!(r.wrapped);
        assert_eq!(svc.metrics().counter("integrity_checks_total"), 2);
    }

    #[test]
    fn scrubber_finds_corruption_and_resumes_across_slices() {
        let svc = tiny(1, 1000, 8);
        let mut cat = sealed_scrub_catalog(100);
        // Corrupt column "v" (unit index 1) while keeping the sealed
        // manifest, exactly as a BitFlip fault would.
        let t = Arc::clone(cat.table("t").unwrap());
        let dirty = wimpi_storage::integrity::flip_bits(t.column(1).as_ref(), 0..100, 1, 42);
        cat.register("t", t.with_replaced_column(1, dirty).unwrap());
        let ctx = QueryContext::new();
        // Slice 1 covers only "k": clean, no wrap.
        let first = svc.scrub(&cat, 1, &ctx).unwrap();
        assert_eq!((first.checks, first.violations.len(), first.wrapped), (1, 0, false));
        // Slice 2 resumes at "v" and trips over the flip.
        let second = svc.scrub(&cat, 1, &ctx).unwrap();
        assert_eq!(second.checks, 1);
        assert_eq!(second.violations.len(), 1);
        assert!(second.wrapped, "cursor wrapped after the last unit");
        let (table, v) = &second.violations[0];
        assert_eq!((table.as_str(), v.column.as_str(), v.chunk), ("t", "v", 0));
        assert_ne!(v.expected, v.actual);
        assert_eq!(svc.metrics().counter("integrity_failures_total"), 1);
    }

    #[test]
    fn scrubber_respects_cancellation_but_keeps_progress() {
        let svc = tiny(1, 1000, 8);
        let cat = sealed_scrub_catalog(100);
        let token = CancelToken::new();
        let ctx = QueryContext::new().with_cancel_token(token.clone());
        token.cancel();
        let err = svc.scrub(&cat, 64, &ctx).unwrap_err();
        assert_eq!(err, EngineError::Cancelled);
        // A fresh context picks up at the persisted cursor.
        let r = svc.scrub(&cat, 64, &QueryContext::new()).unwrap();
        assert_eq!(r.checks, 2);
    }
}
