//! # wimpi-engine
//!
//! A from-scratch, in-memory, columnar OLAP engine in the MonetDB
//! column-at-a-time style — the substrate standing in for the DBMS the paper
//! benchmarks (DESIGN.md §2). Queries are built with
//! [`plan::PlanBuilder`], optimized by [`optimizer::optimize`], and executed
//! by [`exec::execute`], which also returns the [`stats::WorkProfile`] that
//! `wimpi-hwsim` prices under each hardware model.

pub mod error;
pub mod eval;
pub mod exec;
pub mod expr;
pub mod governor;
pub mod like;
pub mod optimizer;
pub mod params;
pub mod plan;
pub mod relation;
pub mod service;
pub mod stats;

pub use error::{EngineError, Result};
pub use exec::parallel::{EngineConfig, Executor};
pub use exec::{execute, execute_governed, execute_traced, execute_traced_governed, execute_with};
pub use expr::{col, date, dec2, lit, Expr};
pub use governor::{BudgetParseError, CancelToken, MemoryReservation, QueryContext, Reservation};
pub use params::{bind_params, bind_params_spanning, strip_params};
pub use plan::{AggExpr, AggFunc, JoinType, LogicalPlan, PlanBuilder, SortKey};
pub use relation::Relation;
pub use service::{QuerySpec, ScrubReport, Service, ServiceConfig, ServiceError, Ticket};
pub use stats::WorkProfile;
pub use wimpi_obs::{Span, Tracer};

use wimpi_storage::Catalog;

/// Optimizes and executes a plan — the everyday (serial) entry point.
pub fn execute_query(plan: &LogicalPlan, catalog: &Catalog) -> Result<(Relation, WorkProfile)> {
    execute_query_with(plan, catalog, &EngineConfig::serial())
}

/// Optimizes and executes a plan under an execution configuration. The
/// morsel-driven kernels keep results and work profiles bit-identical at any
/// thread count (see [`exec::parallel`]).
pub fn execute_query_with(
    plan: &LogicalPlan,
    catalog: &Catalog,
    cfg: &EngineConfig,
) -> Result<(Relation, WorkProfile)> {
    let optimized = optimizer::optimize(plan.clone(), catalog)?;
    exec::execute_with(&optimized, catalog, cfg)
}

/// Optimizes and executes a plan with operator-level tracing enabled,
/// returning the query's span tree alongside the result. Tracing adds a
/// per-operator timing wrapper but never changes results or work profiles;
/// the root span's counters equal the returned [`WorkProfile`] exactly.
pub fn execute_query_traced(
    plan: &LogicalPlan,
    catalog: &Catalog,
    cfg: &EngineConfig,
) -> Result<(Relation, WorkProfile, Span)> {
    let optimized = optimizer::optimize(plan.clone(), catalog)?;
    exec::execute_traced(&optimized, catalog, cfg)
}

/// Optimizes and executes a plan under a resource governor: the context's
/// memory budget caps operator scratch (with deterministic Grace-partitioned
/// fallbacks before any error), and its cancel token/deadline stop the query
/// cooperatively at morsel boundaries. With `QueryContext::default()` this
/// is exactly [`execute_query_with`].
pub fn execute_query_governed(
    plan: &LogicalPlan,
    catalog: &Catalog,
    cfg: &EngineConfig,
    ctx: &QueryContext,
) -> Result<(Relation, WorkProfile)> {
    let optimized = optimizer::optimize(plan.clone(), catalog)?;
    exec::execute_governed(&optimized, catalog, cfg, ctx)
}

/// [`execute_query_governed`] with operator-level tracing; `EXPLAIN ANALYZE`
/// uses this to report measured per-operator peak bytes.
pub fn execute_query_traced_governed(
    plan: &LogicalPlan,
    catalog: &Catalog,
    cfg: &EngineConfig,
    ctx: &QueryContext,
) -> Result<(Relation, WorkProfile, Span)> {
    let optimized = optimizer::optimize(plan.clone(), catalog)?;
    exec::execute_traced_governed(&optimized, catalog, cfg, ctx)
}
