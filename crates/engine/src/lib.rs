//! # wimpi-engine
//!
//! A from-scratch, in-memory, columnar OLAP engine in the MonetDB
//! column-at-a-time style — the substrate standing in for the DBMS the paper
//! benchmarks (DESIGN.md §2). Queries are built with
//! [`plan::PlanBuilder`], optimized by [`optimizer::optimize`], and executed
//! by [`exec::execute`], which also returns the [`stats::WorkProfile`] that
//! `wimpi-hwsim` prices under each hardware model.

pub mod error;
pub mod eval;
pub mod exec;
pub mod expr;
pub mod like;
pub mod optimizer;
pub mod plan;
pub mod relation;
pub mod stats;

pub use error::{EngineError, Result};
pub use exec::execute;
pub use expr::{col, date, dec2, lit, Expr};
pub use plan::{AggExpr, AggFunc, JoinType, LogicalPlan, PlanBuilder, SortKey};
pub use relation::Relation;
pub use stats::WorkProfile;

use wimpi_storage::Catalog;

/// Optimizes and executes a plan — the everyday entry point.
pub fn execute_query(plan: &LogicalPlan, catalog: &Catalog) -> Result<(Relation, WorkProfile)> {
    let optimized = optimizer::optimize(plan.clone(), catalog)?;
    exec::execute(&optimized, catalog)
}
