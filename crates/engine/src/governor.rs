//! The resource governor: measured per-query memory budgets and cooperative
//! cancellation, threaded through every operator.
//!
//! The paper's §III-C4 failure analysis found that wimpy-node deaths "almost
//! always resulted from virtual memory thrashing" — 1 GB Pis do not get to
//! allocate optimistically. PR 1 *modeled* that pressure in the cluster's
//! [`MemoryModel`]; this module *governs* it inside the engine:
//!
//! - [`MemoryReservation`] is an atomic reserve/release tracker with a
//!   high-water mark. Morsel workers share one tracker through an `Arc`, so
//!   the budget is per-query, not per-thread.
//! - [`Reservation`] is the RAII guard operators hold across a large
//!   allocation (join build table, aggregate hash table, sort key buffer,
//!   materialized intermediate). Dropping it releases the bytes.
//! - [`QueryContext`] bundles the budget with a [`CancelToken`] and an
//!   optional deadline, and is what `execute_governed`/`run_governed` thread
//!   through the operator tree. Operators call [`QueryContext::checkpoint`]
//!   at morsel boundaries; a cancelled or expired query returns
//!   `EngineError::Cancelled` with the catalog untouched.
//!
//! ## Determinism
//!
//! All *decisions* (reserve vs. Grace fallback, partition counts) happen on
//! the coordinator thread, from row counts that do not depend on the thread
//! count — so a budget-constrained plan takes the same path at 1, 2, or 64
//! threads, and its output is bit-exact vs. the unconstrained run whenever it
//! completes. Worker threads only *observe* cancellation (a relaxed load);
//! they never flip shared state.
//!
//! [`MemoryModel`]: ../../wimpi_cluster/struct.MemoryModel.html

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use wimpi_storage::spill::SpillDisk;

use crate::error::{EngineError, Result};

/// Sentinel budget meaning "no limit" (the default).
pub const UNLIMITED: u64 = u64::MAX;

/// Thread-safe reserve/release accounting against a fixed byte budget.
///
/// `try_reserve` either admits the whole request or leaves the tracker
/// unchanged — a failed reservation never inflates `used` — and the
/// high-water mark ratchets up under the same successful CAS, so it is
/// exactly the maximum prefix sum of the reserve/release history.
#[derive(Debug)]
pub struct MemoryReservation {
    budget: u64,
    used: AtomicU64,
    high_water: AtomicU64,
    /// Peak of *reserved* bytes alone — the anonymous operator scratch that
    /// would hard-OOM a swap-off node — excluding [`QueryContext::track`]ed
    /// intermediates, which only add pressure.
    hard_high_water: AtomicU64,
}

impl Default for MemoryReservation {
    fn default() -> Self {
        Self::unlimited()
    }
}

impl MemoryReservation {
    /// A tracker that admits everything but still measures the peak.
    pub fn unlimited() -> Self {
        Self::with_budget(UNLIMITED)
    }

    /// A tracker enforcing `budget` bytes.
    pub fn with_budget(budget: u64) -> Self {
        MemoryReservation {
            budget,
            used: AtomicU64::new(0),
            high_water: AtomicU64::new(0),
            hard_high_water: AtomicU64::new(0),
        }
    }

    /// The configured budget ([`UNLIMITED`] when unbounded).
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Bytes currently reserved.
    pub fn used(&self) -> u64 {
        self.used.load(Ordering::Acquire)
    }

    /// The maximum `used` ever observed — the measured peak.
    pub fn high_water(&self) -> u64 {
        self.high_water.load(Ordering::Acquire)
    }

    /// The peak of *reserved* bytes alone (hash tables, key buffers —
    /// anonymous allocations that hard-OOM a swap-off node), excluding
    /// tracked intermediates. Always `<=` [`high_water`](Self::high_water).
    pub fn hard_high_water(&self) -> u64 {
        self.hard_high_water.load(Ordering::Acquire)
    }

    /// Reserves `bytes` if the budget allows, returning whether it did.
    /// All-or-nothing: a rejected request leaves `used` untouched.
    pub fn try_reserve(&self, bytes: u64) -> bool {
        let mut cur = self.used.load(Ordering::Acquire);
        loop {
            let Some(next) = cur.checked_add(bytes) else { return false };
            if next > self.budget {
                return false;
            }
            match self.used.compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => {
                    self.high_water.fetch_max(next, Ordering::AcqRel);
                    self.hard_high_water.fetch_max(next, Ordering::AcqRel);
                    return true;
                }
                Err(actual) => cur = actual,
            }
        }
    }

    /// Releases `bytes` previously reserved. Saturates at zero so a buggy
    /// double-release cannot wrap the counter (debug builds assert instead).
    pub fn release(&self, bytes: u64) {
        let mut cur = self.used.load(Ordering::Acquire);
        loop {
            debug_assert!(cur >= bytes, "release of {bytes} bytes with only {cur} reserved");
            let next = cur.saturating_sub(bytes);
            match self.used.compare_exchange_weak(cur, next, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => return,
                Err(actual) => cur = actual,
            }
        }
    }
}

/// RAII guard over bytes reserved from a shared [`MemoryReservation`].
/// Dropping it gives the bytes back — including on the error/unwind path, so
/// a failed or cancelled query leaves the budget exactly restored.
#[derive(Debug)]
pub struct Reservation {
    tracker: Arc<MemoryReservation>,
    bytes: u64,
}

impl Reservation {
    /// Bytes this guard currently holds.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Grows the reservation by `additional` bytes if the budget allows.
    /// On failure the guard keeps its current size.
    pub fn grow(&mut self, additional: u64) -> bool {
        if self.tracker.try_reserve(additional) {
            self.bytes += additional;
            true
        } else {
            false
        }
    }
}

impl Drop for Reservation {
    fn drop(&mut self) {
        self.tracker.release(self.bytes);
    }
}

/// Shared cancellation flag, checked cooperatively at morsel boundaries.
///
/// Cloning shares the flag. The `fuse` exists for deterministic tests: a
/// token built with [`CancelToken::after_checks`] trips itself on the n-th
/// *coordinator* checkpoint, which is a thread-count-independent event.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<CancelInner>,
}

#[derive(Debug)]
struct CancelInner {
    cancelled: AtomicBool,
    /// Checkpoints remaining before self-cancellation; negative = disarmed.
    fuse: AtomicI64,
}

impl Default for CancelInner {
    fn default() -> Self {
        CancelInner { cancelled: AtomicBool::new(false), fuse: AtomicI64::new(-1) }
    }
}

impl CancelToken {
    /// A token that never fires until [`cancel`](CancelToken::cancel) is
    /// called.
    pub fn new() -> Self {
        Self::default()
    }

    /// A token that cancels itself at the `n`-th coordinator checkpoint
    /// (`n = 0` is cancelled immediately). Checkpoint counts depend only on
    /// the plan and the data, never on the thread count, so tests can cut a
    /// query at an exactly reproducible point.
    pub fn after_checks(n: u64) -> Self {
        let t = Self::new();
        t.inner.fuse.store(n as i64, Ordering::Release);
        t
    }

    /// Signals cancellation. Idempotent; takes effect at the workers' next
    /// morsel boundary.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// True once cancelled (externally or by a burnt fuse).
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Acquire)
    }

    /// One coordinator checkpoint: burns a fuse step if armed, then reports
    /// the flag. Only [`QueryContext::checkpoint`] calls this.
    fn poll(&self) -> bool {
        let fuse = self.inner.fuse.load(Ordering::Acquire);
        if fuse >= 0 {
            if fuse == 0 {
                self.inner.cancelled.store(true, Ordering::Release);
            } else {
                self.inner.fuse.store(fuse - 1, Ordering::Release);
            }
        }
        self.is_cancelled()
    }
}

/// Everything the engine needs to govern one query: the shared memory
/// tracker, the cancellation token, and an optional wall-clock deadline.
///
/// The default context is unlimited and never cancels — exactly the
/// pre-governor engine, which is why the ungoverned entry points simply pass
/// `QueryContext::default()`.
#[derive(Debug, Clone, Default)]
pub struct QueryContext {
    /// Shared budget tracker; morsel workers hold clones of this `Arc`.
    pub mem: Arc<MemoryReservation>,
    /// Cooperative cancellation flag.
    pub cancel: CancelToken,
    /// Absolute deadline; queries past it return `Cancelled`.
    pub deadline: Option<Instant>,
    /// Times the graceful-degradation path engaged (Grace-partitioned join
    /// or aggregate builds) — telemetry, not control flow.
    fallbacks: Arc<AtomicU32>,
    /// Largest partition fan-out any fallback needed.
    max_parts: Arc<AtomicU32>,
    /// Chunk checksum comparisons performed by scan-time verification
    /// (DESIGN.md §12) — telemetry the service/cluster ledgers fold into
    /// their `integrity_checks_total` counters.
    integrity_checks: Arc<AtomicU64>,
    /// Optional spill disk (DESIGN.md §16). When present, join builds, hash
    /// aggregates, and sorts that fail even the Grace rung stage partitions
    /// here instead of erroring; when absent the pre-spill cliff behaviour
    /// is unchanged.
    spill: Option<Arc<SpillDisk>>,
}

impl QueryContext {
    /// An unconstrained context (measures peaks, admits everything).
    pub fn new() -> Self {
        Self::default()
    }

    /// A context enforcing `budget` bytes of operator scratch memory.
    pub fn with_budget(budget: u64) -> Self {
        QueryContext { mem: Arc::new(MemoryReservation::with_budget(budget)), ..Self::default() }
    }

    /// Attaches an externally owned cancellation token.
    pub fn with_cancel_token(mut self, token: CancelToken) -> Self {
        self.cancel = token;
        self
    }

    /// Sets an absolute deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets a deadline `timeout` from now.
    pub fn with_timeout(self, timeout: Duration) -> Self {
        let deadline = Instant::now() + timeout;
        self.with_deadline(deadline)
    }

    /// Attaches a spill disk, enabling the out-of-core rung past Grace.
    pub fn with_spill(mut self, disk: Arc<SpillDisk>) -> Self {
        self.spill = Some(disk);
        self
    }

    /// The attached spill disk, if any.
    pub fn spill(&self) -> Option<&Arc<SpillDisk>> {
        self.spill.as_ref()
    }

    /// The configured budget ([`UNLIMITED`] when unbounded).
    pub fn budget(&self) -> u64 {
        self.mem.budget()
    }

    /// The measured peak reservation so far (bytes), tracked intermediates
    /// included.
    pub fn high_water(&self) -> u64 {
        self.mem.high_water()
    }

    /// The measured peak of reserved operator scratch alone (see
    /// [`MemoryReservation::hard_high_water`]).
    pub fn hard_high_water(&self) -> u64 {
        self.mem.hard_high_water()
    }

    /// Bytes currently reserved (0 once a query finished or failed cleanly).
    pub fn used(&self) -> u64 {
        self.mem.used()
    }

    /// Reserves `bytes` for `operator`, or fails with the typed
    /// `ResourceExhausted` error. Operators with a graceful fallback should
    /// use [`try_reserve`](QueryContext::try_reserve) instead.
    pub fn reserve(&self, bytes: u64, operator: &str) -> Result<Reservation> {
        self.try_reserve(bytes).ok_or_else(|| EngineError::ResourceExhausted {
            requested: bytes,
            budget: self.budget(),
            operator: operator.to_string(),
        })
    }

    /// Reserves `bytes` if the budget allows, returning the RAII guard.
    pub fn try_reserve(&self, bytes: u64) -> Option<Reservation> {
        if self.mem.try_reserve(bytes) {
            Some(Reservation { tracker: Arc::clone(&self.mem), bytes })
        } else {
            None
        }
    }

    /// Records `bytes` of materialized output against the high-water mark
    /// without capping it. Intermediates must exist for the query to mean
    /// anything; the budget governs the *operator scratch* (hash tables, key
    /// buffers) that Grace partitioning can actually shrink — mirroring the
    /// cluster's `MemoryModel`, where only transient bytes hard-OOM.
    pub fn track(&self, bytes: u64) {
        // Bypass the cap: add, ratchet the peak, release.
        let next = self.mem.used.fetch_add(bytes, Ordering::AcqRel).saturating_add(bytes);
        self.mem.high_water.fetch_max(next, Ordering::AcqRel);
        self.mem.used.fetch_sub(bytes, Ordering::AcqRel);
    }

    /// Coordinator-side cancellation/deadline check; returns
    /// `Err(Cancelled)` once the token fired or the deadline passed.
    /// Checkpoint counts are deterministic (plan- and data-dependent only),
    /// which is what makes [`CancelToken::after_checks`] reproducible.
    pub fn checkpoint(&self) -> Result<()> {
        if self.cancel.poll() {
            return Err(EngineError::Cancelled);
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                self.cancel.cancel();
                return Err(EngineError::Cancelled);
            }
        }
        Ok(())
    }

    /// Worker-side read-only probe: true once cancellation was signalled.
    /// Never burns the fuse (workers race; the fuse must stay deterministic).
    pub fn interrupted(&self) -> bool {
        self.cancel.is_cancelled()
    }

    /// Notes one engagement of the Grace-partitioned fallback at `nparts`.
    pub fn note_fallback(&self, nparts: u32) {
        self.fallbacks.fetch_add(1, Ordering::AcqRel);
        self.max_parts.fetch_max(nparts, Ordering::AcqRel);
    }

    /// How many operators degraded to the partitioned fallback.
    pub fn fallbacks(&self) -> u32 {
        self.fallbacks.load(Ordering::Acquire)
    }

    /// The largest partition fan-out any fallback used (0 = none).
    pub fn max_fallback_parts(&self) -> u32 {
        self.max_parts.load(Ordering::Acquire)
    }

    /// Notes `n` chunk checksum comparisons performed by a verifying scan.
    pub fn note_integrity_checks(&self, n: u64) {
        self.integrity_checks.fetch_add(n, Ordering::AcqRel);
    }

    /// Chunk checksum comparisons this context's queries performed (0 when
    /// verification is off or no scanned table carries a manifest).
    pub fn integrity_checks(&self) -> u64 {
        self.integrity_checks.load(Ordering::Acquire)
    }
}

/// Why a budget string did not parse (see [`parse_budget`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BudgetParseError {
    /// The string was empty (or all whitespace).
    Empty,
    /// The number or unit suffix was unrecognizable.
    Malformed(String),
    /// The value parsed but is zero or negative — a budget must grant at
    /// least one byte. (Shells spell "no limit" out of band, e.g.
    /// `SET memory_budget = unlimited`.)
    NonPositive(String),
}

impl std::fmt::Display for BudgetParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BudgetParseError::Empty => write!(f, "empty budget string"),
            BudgetParseError::Malformed(s) => {
                write!(f, "malformed budget {s:?} (want e.g. 64K, 1.5GiB, 0.5MB, 1048576)")
            }
            BudgetParseError::NonPositive(s) => {
                write!(f, "budget {s:?} is not positive (a budget grants at least one byte)")
            }
        }
    }
}

impl std::error::Error for BudgetParseError {}

/// Parses a byte budget: a positive (possibly fractional) number with an
/// optional unit. `K`/`KiB`-style suffixes are powers of 1024, `KB`-style
/// are powers of 1000, both case-insensitive: `64K`, `1.5GiB`, `0.5MB`,
/// `1048576`. Zero and negative values are rejected with a typed error —
/// "unlimited" is not a number here. Used by the shell and benches for
/// `WIMPI_MEM_BUDGET`; the engine core itself never reads the environment.
pub fn parse_budget(s: &str) -> std::result::Result<u64, BudgetParseError> {
    let s = s.trim();
    if s.is_empty() {
        return Err(BudgetParseError::Empty);
    }
    let split = s.len() - s.bytes().rev().take_while(|b| b.is_ascii_alphabetic()).count();
    let (num, unit) = (s[..split].trim(), &s[split..]);
    let mult: u64 = match unit.to_ascii_lowercase().as_str() {
        "" | "b" => 1,
        "k" | "kib" => 1 << 10,
        "m" | "mib" => 1 << 20,
        "g" | "gib" => 1 << 30,
        "kb" => 1_000,
        "mb" => 1_000_000,
        "gb" => 1_000_000_000,
        _ => return Err(BudgetParseError::Malformed(s.to_string())),
    };
    let v: f64 = num.parse().map_err(|_| BudgetParseError::Malformed(s.to_string()))?;
    if !v.is_finite() {
        return Err(BudgetParseError::Malformed(s.to_string()));
    }
    if v <= 0.0 {
        return Err(BudgetParseError::NonPositive(s.to_string()));
    }
    let bytes = (v * mult as f64).round();
    if bytes < 1.0 {
        return Err(BudgetParseError::NonPositive(s.to_string()));
    }
    Ok(bytes as u64)
}

/// Reads `WIMPI_MEM_BUDGET` (see [`parse_budget`]); `None` when unset or
/// unparsable.
pub fn budget_from_env() -> Option<u64> {
    std::env::var("WIMPI_MEM_BUDGET").ok().and_then(|s| parse_budget(&s).ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserve_release_roundtrip_restores_budget() {
        let t = MemoryReservation::with_budget(1000);
        assert!(t.try_reserve(600));
        assert!(!t.try_reserve(500), "would exceed budget");
        assert!(t.try_reserve(400));
        assert_eq!(t.used(), 1000);
        t.release(600);
        t.release(400);
        assert_eq!(t.used(), 0);
        assert_eq!(t.high_water(), 1000);
    }

    #[test]
    fn failed_reserve_leaves_tracker_unchanged() {
        let t = MemoryReservation::with_budget(100);
        assert!(t.try_reserve(100));
        assert!(!t.try_reserve(1));
        assert_eq!(t.used(), 100);
        assert_eq!(t.high_water(), 100);
    }

    #[test]
    fn unlimited_admits_and_measures() {
        let t = MemoryReservation::unlimited();
        assert!(t.try_reserve(1 << 40));
        assert_eq!(t.high_water(), 1 << 40);
        t.release(1 << 40);
        assert_eq!(t.used(), 0);
    }

    #[test]
    fn reservation_guard_releases_on_drop() {
        let ctx = QueryContext::with_budget(1000);
        {
            let mut g = ctx.try_reserve(300).expect("fits");
            assert!(g.grow(700));
            assert!(!g.grow(1), "budget full");
            assert_eq!(g.bytes(), 1000);
        }
        assert_eq!(ctx.mem.used(), 0, "drop released everything");
        assert_eq!(ctx.high_water(), 1000);
    }

    #[test]
    fn reserve_error_is_typed() {
        let ctx = QueryContext::with_budget(10);
        let err = ctx.reserve(64, "join build").unwrap_err();
        assert_eq!(
            err,
            EngineError::ResourceExhausted {
                requested: 64,
                budget: 10,
                operator: "join build".to_string()
            }
        );
    }

    #[test]
    fn track_ratchets_peak_without_capping() {
        let ctx = QueryContext::with_budget(10);
        ctx.track(1_000_000);
        assert_eq!(ctx.mem.used(), 0);
        assert_eq!(ctx.high_water(), 1_000_000);
        // The cap still applies to reservations.
        assert!(ctx.try_reserve(11).is_none());
    }

    #[test]
    fn hard_high_water_excludes_tracked_intermediates() {
        let ctx = QueryContext::new();
        ctx.track(1 << 20);
        let g = ctx.try_reserve(4096).expect("unlimited");
        drop(g);
        assert_eq!(ctx.high_water(), 1 << 20);
        assert_eq!(ctx.hard_high_water(), 4096);
    }

    #[test]
    fn cancel_token_fires_at_checkpoints() {
        let ctx = QueryContext::new().with_cancel_token(CancelToken::after_checks(2));
        assert!(ctx.checkpoint().is_ok());
        assert!(ctx.checkpoint().is_ok());
        assert_eq!(ctx.checkpoint(), Err(EngineError::Cancelled));
        // Sticky.
        assert_eq!(ctx.checkpoint(), Err(EngineError::Cancelled));
        assert!(ctx.interrupted());
    }

    #[test]
    fn external_cancel_and_deadline() {
        let token = CancelToken::new();
        let ctx = QueryContext::new().with_cancel_token(token.clone());
        assert!(ctx.checkpoint().is_ok());
        token.cancel();
        assert_eq!(ctx.checkpoint(), Err(EngineError::Cancelled));

        let past = Instant::now() - Duration::from_millis(1);
        let ctx = QueryContext::new().with_deadline(past);
        assert_eq!(ctx.checkpoint(), Err(EngineError::Cancelled));
        assert!(ctx.cancel.is_cancelled(), "deadline expiry signals workers too");
    }

    #[test]
    fn interrupted_never_burns_the_fuse() {
        let ctx = QueryContext::new().with_cancel_token(CancelToken::after_checks(1));
        for _ in 0..100 {
            assert!(!ctx.interrupted());
        }
        assert!(ctx.checkpoint().is_ok());
        assert_eq!(ctx.checkpoint(), Err(EngineError::Cancelled));
    }

    #[test]
    fn fallback_telemetry_accumulates() {
        let ctx = QueryContext::new();
        assert_eq!((ctx.fallbacks(), ctx.max_fallback_parts()), (0, 0));
        ctx.note_fallback(4);
        ctx.note_fallback(16);
        ctx.note_fallback(8);
        assert_eq!((ctx.fallbacks(), ctx.max_fallback_parts()), (3, 16));
    }

    #[test]
    fn budget_parsing() {
        assert_eq!(parse_budget("1048576"), Ok(1 << 20));
        assert_eq!(parse_budget("64K"), Ok(64 << 10));
        assert_eq!(parse_budget("16m"), Ok(16 << 20));
        assert_eq!(parse_budget("1G"), Ok(1 << 30));
        assert_eq!(parse_budget("1.5K"), Ok(1536));
        assert_eq!(parse_budget("  512 b "), Ok(512));
    }

    #[test]
    fn budget_parsing_fractional_units() {
        assert_eq!(parse_budget("1.5GiB"), Ok(3 << 29)); // 1.5 × 2^30
        assert_eq!(parse_budget("0.5MB"), Ok(500_000)); // SI: powers of 1000
        assert_eq!(parse_budget("0.5MiB"), Ok(512 << 10));
        assert_eq!(parse_budget("2kb"), Ok(2_000));
        assert_eq!(parse_budget("0.25k"), Ok(256));
    }

    #[test]
    fn budget_parsing_rejects_with_typed_errors() {
        assert_eq!(parse_budget(""), Err(BudgetParseError::Empty));
        assert_eq!(parse_budget("   "), Err(BudgetParseError::Empty));
        assert_eq!(parse_budget("chunky"), Err(BudgetParseError::Malformed("chunky".into())));
        assert_eq!(parse_budget("1X"), Err(BudgetParseError::Malformed("1X".into())));
        assert_eq!(parse_budget("nanG"), Err(BudgetParseError::Malformed("nanG".into())));
        assert_eq!(parse_budget("infG"), Err(BudgetParseError::Malformed("infG".into())));
        assert_eq!(parse_budget("0"), Err(BudgetParseError::NonPositive("0".into())));
        assert_eq!(parse_budget("-1"), Err(BudgetParseError::NonPositive("-1".into())));
        assert_eq!(parse_budget("-1.5G"), Err(BudgetParseError::NonPositive("-1.5G".into())));
        assert_eq!(
            parse_budget("0.4"),
            Err(BudgetParseError::NonPositive("0.4".into())),
            "rounds to zero bytes"
        );
    }
}
