//! Parameter normalization for plan caching (DESIGN.md §16).
//!
//! Two submissions of the same TPC-H query with different spec parameters
//! (a shipped-before date, a discount band, a quantity threshold) share one
//! plan *shape*. [`strip_params`] rewrites every literal in a plan into a
//! positional `$param:i` sentinel and returns the extracted values;
//! [`bind_params`] substitutes values back into a normalized plan. A plan
//! cache keyed on the normalized shape therefore hits across parameter
//! variants, while the binding step guarantees the executed plan is
//! byte-identical to the original — normalization can change cache economics
//! only, never answers.
//!
//! Sentinels are ordinary string literals, so a normalized plan stays a
//! valid [`LogicalPlan`] (it renders, explains, and hashes like any other).
//! Literal strings that *look* like sentinels cannot occur in TPC-H text
//! and are rejected by [`strip_params`] defensively.

use wimpi_storage::Value;

use crate::error::{EngineError, Result};
use crate::expr::Expr;
use crate::plan::LogicalPlan;

/// The sentinel literal standing for parameter `i`.
fn sentinel(i: usize) -> Value {
    Value::Str(format!("$param:{i}"))
}

/// Parses a sentinel back into its parameter index.
fn sentinel_index(v: &Value) -> Option<usize> {
    match v {
        Value::Str(s) => s.strip_prefix("$param:").and_then(|i| i.parse().ok()),
        _ => None,
    }
}

/// Rewrites every literal value in `plan` (filter predicates, projection
/// expressions, aggregate inputs, `IN` lists, `BETWEEN` bounds) into a
/// positional sentinel, returning the normalized plan and the extracted
/// values in sentinel order. `strip_params(p)` then `bind_params` with the
/// same values is the identity on plans.
pub fn strip_params(plan: &LogicalPlan) -> Result<(LogicalPlan, Vec<Value>)> {
    let mut params = Vec::new();
    let stripped = map_plan_values(plan, &mut |v| {
        if sentinel_index(v).is_some() {
            return Err(EngineError::Plan(format!(
                "literal {v} collides with the parameter-sentinel namespace"
            )));
        }
        params.push(v.clone());
        Ok(sentinel(params.len() - 1))
    })?;
    Ok((stripped, params))
}

/// Substitutes `params` back into a plan normalized by [`strip_params`].
/// Every sentinel must resolve to an in-range parameter; every parameter
/// must be consumed at least once (an unused parameter means the plan and
/// the values came from different shapes).
pub fn bind_params(plan: &LogicalPlan, params: &[Value]) -> Result<LogicalPlan> {
    let mut bound = bind_params_spanning(&[plan], params)?;
    Ok(bound.pop().expect("one plan in, one plan out"))
}

/// [`bind_params`] over a *set* of plans that jointly carry one normalized
/// shape's sentinels — e.g. a distributed rewrite that split one stripped
/// plan into a node plan and a driver merge plan, with the original
/// parameters scattered across both. Each sentinel resolves independently;
/// collectively every parameter must be consumed at least once.
pub fn bind_params_spanning(plans: &[&LogicalPlan], params: &[Value]) -> Result<Vec<LogicalPlan>> {
    let mut used = vec![false; params.len()];
    let bound = plans
        .iter()
        .map(|plan| {
            map_plan_values(plan, &mut |v| match sentinel_index(v) {
                Some(i) => match params.get(i) {
                    Some(p) => {
                        used[i] = true;
                        Ok(p.clone())
                    }
                    None => Err(EngineError::Plan(format!(
                        "sentinel $param:{i} is out of range for {} bound values",
                        params.len()
                    ))),
                },
                None => Ok(v.clone()),
            })
        })
        .collect::<Result<Vec<_>>>()?;
    if let Some(i) = used.iter().position(|u| !u) {
        return Err(EngineError::Plan(format!(
            "bound value {i} is unused — plan and parameters disagree on shape"
        )));
    }
    Ok(bound)
}

/// Clones `plan`, passing every literal [`Value`] through `f` in a fixed
/// depth-first, field-order traversal (the order both [`strip_params`] and
/// [`bind_params`] rely on).
fn map_plan_values(
    plan: &LogicalPlan,
    f: &mut impl FnMut(&Value) -> Result<Value>,
) -> Result<LogicalPlan> {
    Ok(match plan {
        LogicalPlan::Scan { table, projection } => {
            LogicalPlan::Scan { table: table.clone(), projection: projection.clone() }
        }
        LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
            input: Box::new(map_plan_values(input, f)?),
            predicate: map_expr_values(predicate, f)?,
        },
        LogicalPlan::Project { input, exprs } => LogicalPlan::Project {
            input: Box::new(map_plan_values(input, f)?),
            exprs: exprs
                .iter()
                .map(|(e, n)| Ok((map_expr_values(e, f)?, n.clone())))
                .collect::<Result<_>>()?,
        },
        LogicalPlan::Join { left, right, on, join_type } => LogicalPlan::Join {
            left: Box::new(map_plan_values(left, f)?),
            right: Box::new(map_plan_values(right, f)?),
            on: on.clone(),
            join_type: *join_type,
        },
        LogicalPlan::Aggregate { input, group_by, aggs } => LogicalPlan::Aggregate {
            input: Box::new(map_plan_values(input, f)?),
            group_by: group_by
                .iter()
                .map(|(e, n)| Ok((map_expr_values(e, f)?, n.clone())))
                .collect::<Result<_>>()?,
            aggs: aggs
                .iter()
                .map(|a| {
                    Ok(crate::plan::AggExpr {
                        func: a.func,
                        expr: a.expr.as_ref().map(|e| map_expr_values(e, f)).transpose()?,
                        name: a.name.clone(),
                    })
                })
                .collect::<Result<_>>()?,
        },
        LogicalPlan::Sort { input, keys } => {
            LogicalPlan::Sort { input: Box::new(map_plan_values(input, f)?), keys: keys.clone() }
        }
        LogicalPlan::Limit { input, n } => {
            LogicalPlan::Limit { input: Box::new(map_plan_values(input, f)?), n: *n }
        }
    })
}

fn map_expr_values(expr: &Expr, f: &mut impl FnMut(&Value) -> Result<Value>) -> Result<Expr> {
    Ok(match expr {
        Expr::Col(n) => Expr::Col(n.clone()),
        Expr::Lit(v) => Expr::Lit(f(v)?),
        Expr::Bin { op, left, right } => Expr::Bin {
            op: *op,
            left: Box::new(map_expr_values(left, f)?),
            right: Box::new(map_expr_values(right, f)?),
        },
        Expr::Not(e) => Expr::Not(Box::new(map_expr_values(e, f)?)),
        Expr::Like { expr, pattern, negated } => Expr::Like {
            expr: Box::new(map_expr_values(expr, f)?),
            pattern: pattern.clone(),
            negated: *negated,
        },
        Expr::InList { expr, list, negated } => Expr::InList {
            expr: Box::new(map_expr_values(expr, f)?),
            list: list.iter().map(&mut *f).collect::<Result<_>>()?,
            negated: *negated,
        },
        Expr::Between { expr, low, high } => Expr::Between {
            expr: Box::new(map_expr_values(expr, f)?),
            low: f(low)?,
            high: f(high)?,
        },
        Expr::Case { when, then, otherwise } => Expr::Case {
            when: Box::new(map_expr_values(when, f)?),
            then: Box::new(map_expr_values(then, f)?),
            otherwise: Box::new(map_expr_values(otherwise, f)?),
        },
        Expr::ExtractYear(e) => Expr::ExtractYear(Box::new(map_expr_values(e, f)?)),
        Expr::Substr { expr, start, len } => {
            Expr::Substr { expr: Box::new(map_expr_values(expr, f)?), start: *start, len: *len }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, date, dec2, lit};
    use crate::plan::PlanBuilder;

    fn q6ish(ship: &str, disc: &str, qty: &str) -> LogicalPlan {
        let band =
            |s: &str| Value::Dec(wimpi_storage::Decimal64::from_str_scale(s, 2).expect("const"));
        PlanBuilder::scan("lineitem")
            .filter(
                col("l_shipdate")
                    .gte(date(ship))
                    .and(col("l_discount").between(band(disc), band("0.07")))
                    .and(col("l_quantity").lt(dec2(qty))),
            )
            .aggregate(vec![], vec![crate::plan::AggExpr::sum(col("l_discount"), "rev")])
            .build()
    }

    #[test]
    fn strip_then_bind_is_the_identity() {
        let plan = q6ish("1994-01-01", "0.05", "24");
        let (norm, params) = strip_params(&plan).unwrap();
        assert_eq!(params.len(), 4, "two dec bounds, one date, one int: {params:?}");
        assert_ne!(norm, plan, "normalization must replace literals");
        assert_eq!(bind_params(&norm, &params).unwrap(), plan);
    }

    #[test]
    fn parameter_variants_share_one_normalized_shape() {
        let (n1, p1) = strip_params(&q6ish("1994-01-01", "0.05", "24")).unwrap();
        let (n2, p2) = strip_params(&q6ish("1995-01-01", "0.03", "25")).unwrap();
        assert_eq!(n1.explain(), n2.explain(), "shapes must collide in the cache");
        assert_ne!(p1, p2);
        // …and each binds back to its own original.
        assert_eq!(bind_params(&n2, &p2).unwrap(), q6ish("1995-01-01", "0.03", "25"));
    }

    #[test]
    fn binding_rejects_shape_mismatches() {
        let (norm, mut params) = strip_params(&q6ish("1994-01-01", "0.05", "24")).unwrap();
        assert!(bind_params(&norm, &params[..2]).is_err(), "missing values");
        params.push(lit_value(7));
        assert!(bind_params(&norm, &params).is_err(), "unused value");
    }

    fn lit_value(i: i64) -> Value {
        Value::I64(i)
    }

    #[test]
    fn sentinel_collisions_are_rejected() {
        let plan =
            PlanBuilder::scan("t").filter(col("c").eq(lit(Value::Str("$param:0".into())))).build();
        assert!(strip_params(&plan).is_err());
    }
}
