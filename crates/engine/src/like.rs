//! SQL `LIKE` pattern matching.
//!
//! Supports `%` (any run, including empty) and `_` (exactly one character).
//! Matching is performed once per *dictionary value*, not per row, so a LIKE
//! over a dictionary-encoded column costs O(cardinality × pattern).

/// Returns true when `text` matches the SQL LIKE `pattern`.
///
/// Uses the classic two-pointer backtracking algorithm (linear for the
/// TPC-H patterns, worst-case O(n·m)). All-ASCII inputs — every TPC-H
/// string — match directly over the byte slices with no allocation; mixed
/// or non-ASCII inputs fall back to a char-decoded path (`_` must match one
/// *character*, so byte indexing would miscount multi-byte UTF-8).
pub fn like_match(text: &str, pattern: &str) -> bool {
    if text.is_ascii() && pattern.is_ascii() {
        return like_match_ascii(text.as_bytes(), pattern.as_bytes());
    }
    let t: Vec<char> = text.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    let (mut ti, mut pi) = (0usize, 0usize);
    let (mut star_p, mut star_t) = (usize::MAX, 0usize);
    while ti < t.len() {
        if pi < p.len() && (p[pi] == '_' || p[pi] == t[ti]) {
            ti += 1;
            pi += 1;
        } else if pi < p.len() && p[pi] == '%' {
            star_p = pi;
            star_t = ti;
            pi += 1;
        } else if star_p != usize::MAX {
            // Backtrack: let the last % absorb one more character.
            pi = star_p + 1;
            star_t += 1;
            ti = star_t;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

/// The same two-pointer backtracking over raw bytes — valid because in
/// all-ASCII inputs every byte is one character.
fn like_match_ascii(t: &[u8], p: &[u8]) -> bool {
    let (mut ti, mut pi) = (0usize, 0usize);
    let (mut star_p, mut star_t) = (usize::MAX, 0usize);
    while ti < t.len() {
        if pi < p.len() && (p[pi] == b'_' || p[pi] == t[ti]) {
            ti += 1;
            pi += 1;
        } else if pi < p.len() && p[pi] == b'%' {
            star_p = pi;
            star_t = ti;
            pi += 1;
        } else if star_p != usize::MAX {
            pi = star_p + 1;
            star_t += 1;
            ti = star_t;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == b'%' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_match_without_wildcards() {
        assert!(like_match("MAIL", "MAIL"));
        assert!(!like_match("MAIL", "RAIL"));
        assert!(!like_match("MAIL", "MAI"));
    }

    #[test]
    fn percent_prefix_suffix_infix() {
        assert!(like_match("PROMO BRUSHED TIN", "PROMO%"));
        assert!(!like_match("SMALL BRUSHED TIN", "PROMO%"));
        assert!(like_match("forest green ivory", "%green%"));
        assert!(like_match("x", "%"));
        assert!(like_match("", "%"));
    }

    #[test]
    fn q13_style_two_wildcards() {
        assert!(like_match("the special late requests nag", "%special%requests%"));
        assert!(!like_match("the requests are special", "%special%requests%"));
    }

    #[test]
    fn underscore_matches_single_char() {
        assert!(like_match("Brand#12", "Brand#_2"));
        assert!(!like_match("Brand#2", "Brand#_2"));
        assert!(like_match("ab", "__"));
        assert!(!like_match("a", "__"));
    }

    #[test]
    fn backtracking_cases() {
        assert!(like_match("aXbXcb", "%b"));
        assert!(like_match("mississippi", "%iss%pi"));
        assert!(!like_match("mississippi", "%iss%z%"));
        assert!(like_match("abc", "a%%c"));
    }

    #[test]
    fn empty_pattern_matches_only_empty() {
        assert!(like_match("", ""));
        assert!(!like_match("a", ""));
    }

    #[test]
    fn unicode_is_char_based() {
        assert!(like_match("héllo", "h_llo"));
    }
}
