//! Engine error type.

use std::fmt;
use wimpi_storage::StorageError;

/// Errors produced while planning or executing a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// An underlying storage failure (missing column/table, type mismatch…).
    Storage(StorageError),
    /// The plan is malformed (e.g. sort key not in input schema).
    Plan(String),
    /// A feature the engine deliberately does not implement.
    Unsupported(String),
    /// An operator needed more scratch memory than the query's budget allows,
    /// even after graceful degradation (Grace partitioning) where available.
    ResourceExhausted {
        /// Bytes the failing reservation asked for.
        requested: u64,
        /// The query's configured budget.
        budget: u64,
        /// The operator that could not fit (e.g. `"join build"`, `"sort"`).
        operator: String,
    },
    /// The query was cancelled (token fired or deadline passed) at a morsel
    /// boundary. Catalog and engine state are untouched; re-running the same
    /// plan on the same catalog is bit-exact with an uncancelled run.
    Cancelled,
    /// Scan-time checksum verification found a column chunk whose bytes no
    /// longer match the table's sealed `IntegrityManifest` — silent
    /// corruption, caught (DESIGN.md §12). Raised only when
    /// `EngineConfig::verify_checksums` is on; the repair paths in the
    /// cluster and service quarantine exactly the named chunk.
    Integrity {
        /// Table whose scan failed verification.
        table: String,
        /// Column holding the corrupt chunk (`"__manifest__"` when the
        /// manifest itself failed its self-check).
        column: String,
        /// Morsel-aligned chunk index (a string column's dictionary is the
        /// pseudo-chunk one past its last data chunk).
        chunk: usize,
        /// The checksum sealed in the manifest.
        expected: u32,
        /// The checksum recomputed from the resident bytes.
        actual: u32,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Storage(e) => write!(f, "storage: {e}"),
            EngineError::Plan(s) => write!(f, "plan error: {s}"),
            EngineError::Unsupported(s) => write!(f, "unsupported: {s}"),
            EngineError::ResourceExhausted { requested, budget, operator } => write!(
                f,
                "resource exhausted: {operator} needs {requested} bytes \
                 but the query budget is {budget} bytes"
            ),
            EngineError::Cancelled => write!(f, "query cancelled"),
            EngineError::Integrity { table, column, chunk, expected, actual } => write!(
                f,
                "integrity violation: table {table:?} column {column:?} chunk {chunk}: \
                 expected crc32c {expected:#010x}, got {actual:#010x}"
            ),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for EngineError {
    fn from(e: StorageError) -> Self {
        EngineError::Storage(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, EngineError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_storage_errors() {
        let e: EngineError = StorageError::ColumnNotFound("x".into()).into();
        assert!(e.to_string().contains("column not found: x"));
    }

    #[test]
    fn plan_error_display() {
        let e = EngineError::Plan("sort key missing".into());
        assert_eq!(e.to_string(), "plan error: sort key missing");
    }
}
