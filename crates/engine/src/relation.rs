//! Relations — named column collections flowing between operators.

use std::sync::Arc;

use crate::error::{EngineError, Result};
use wimpi_storage::{Column, DataType, StorageError, Table, Value};

/// An intermediate (or final) result: ordered named columns of equal length.
///
/// Columns are reference-counted so projections and scans are zero-copy.
///
/// Equality is bit-exact column equality (floats compare by value, dictionary
/// columns by codes and values) — what the parallel-determinism tests assert.
#[derive(Debug, Clone, PartialEq)]
pub struct Relation {
    fields: Vec<(String, Arc<Column>)>,
    nrows: usize,
}

impl Relation {
    /// Builds a relation from named columns, validating equal lengths.
    pub fn new(fields: Vec<(String, Arc<Column>)>) -> Result<Self> {
        let nrows = fields.first().map_or(0, |(_, c)| c.len());
        for (i, (name, c)) in fields.iter().enumerate() {
            if c.len() != nrows {
                return Err(EngineError::Plan(format!(
                    "column {name} has {} rows, expected {nrows}",
                    c.len()
                )));
            }
            if fields[..i].iter().any(|(n, _)| n == name) {
                return Err(EngineError::Plan(format!("duplicate column name {name}")));
            }
        }
        Ok(Self { fields, nrows })
    }

    /// An empty, zero-column relation.
    pub fn empty() -> Self {
        Self { fields: Vec::new(), nrows: 0 }
    }

    /// Builds a relation over (a projection of) a stored table, zero-copy.
    pub fn from_table(table: &Table, projection: Option<&[String]>) -> Result<Self> {
        let fields = match projection {
            Some(names) => names
                .iter()
                .map(|n| Ok((n.clone(), Arc::clone(table.column_by_name(n)?))))
                .collect::<Result<Vec<_>>>()?,
            None => table
                .schema()
                .fields()
                .iter()
                .enumerate()
                .map(|(i, f)| (f.name.clone(), Arc::clone(table.column(i))))
                .collect(),
        };
        Ok(Self { fields, nrows: table.num_rows() })
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.fields.len()
    }

    /// Column names in order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.fields.iter().map(|(n, _)| n.as_str())
    }

    /// The fields (name, column) in order.
    pub fn fields(&self) -> &[(String, Arc<Column>)] {
        &self.fields
    }

    /// Looks up a column by name.
    pub fn column(&self, name: &str) -> Result<&Arc<Column>> {
        self.fields
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, c)| c)
            .ok_or_else(|| EngineError::Storage(StorageError::ColumnNotFound(name.to_string())))
    }

    /// True when the relation has a column with this name.
    pub fn contains(&self, name: &str) -> bool {
        self.fields.iter().any(|(n, _)| n == name)
    }

    /// The data type of a named column.
    pub fn data_type(&self, name: &str) -> Result<DataType> {
        self.column(name).map(|c| c.data_type())
    }

    /// The cell at (row, column name) — convenience for tests and result
    /// formatting, not an execution path.
    pub fn value(&self, row: usize, name: &str) -> Result<Value> {
        Ok(self.column(name)?.value(row))
    }

    /// Gathers `sel` rows from every column.
    pub fn take(&self, sel: &[u32]) -> Relation {
        Relation {
            fields: self.fields.iter().map(|(n, c)| (n.clone(), Arc::new(c.take(sel)))).collect(),
            nrows: sel.len(),
        }
    }

    /// Total heap bytes across columns (shared columns counted every time
    /// they appear, mirroring what a materializing engine would hold).
    pub fn heap_bytes(&self) -> usize {
        self.fields.iter().map(|(_, c)| c.heap_bytes()).sum()
    }

    /// Bytes streamed when every column is scanned once — the quantity the
    /// work profile charges (dictionary payloads excluded; see
    /// [`wimpi_storage::Column::stream_bytes`]).
    pub fn stream_bytes(&self) -> usize {
        self.fields.iter().map(|(_, c)| c.stream_bytes()).sum()
    }

    /// Renders the first `limit` rows as an aligned text table.
    pub fn to_text(&self, limit: usize) -> String {
        let rows = self.nrows.min(limit);
        let mut cells: Vec<Vec<String>> = Vec::with_capacity(rows + 1);
        cells.push(self.names().map(str::to_string).collect());
        for r in 0..rows {
            cells.push(self.fields.iter().map(|(_, c)| c.value(r).to_string()).collect());
        }
        let ncols = self.fields.len();
        let mut widths = vec![0usize; ncols];
        for row in &cells {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        for (ri, row) in cells.iter().enumerate() {
            for (i, cell) in row.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                out.push_str(&format!("{cell:>width$}", width = widths[i]));
            }
            out.push('\n');
            if ri == 0 {
                out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols.max(1) - 1)));
                out.push('\n');
            }
        }
        if self.nrows > rows {
            out.push_str(&format!("… {} more rows\n", self.nrows - rows));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wimpi_storage::{Field, Schema};

    fn rel() -> Relation {
        Relation::new(vec![
            ("k".into(), Arc::new(Column::Int64(vec![1, 2, 3]))),
            ("v".into(), Arc::new(Column::Float64(vec![0.5, 1.5, 2.5]))),
        ])
        .unwrap()
    }

    #[test]
    fn construction_checks_lengths() {
        let bad = Relation::new(vec![
            ("a".into(), Arc::new(Column::Int64(vec![1]))),
            ("b".into(), Arc::new(Column::Int64(vec![1, 2]))),
        ]);
        assert!(bad.is_err());
    }

    #[test]
    fn from_table_projects() {
        let t = Table::new(
            Schema::new(vec![Field::new("a", DataType::Int64), Field::new("b", DataType::Int64)]),
            vec![Column::Int64(vec![1]), Column::Int64(vec![2])],
        )
        .unwrap();
        let r = Relation::from_table(&t, Some(&["b".to_string()])).unwrap();
        assert_eq!(r.num_columns(), 1);
        assert_eq!(r.value(0, "b").unwrap(), Value::I64(2));
        assert!(Relation::from_table(&t, Some(&["zzz".to_string()])).is_err());
    }

    #[test]
    fn take_gathers_all_columns() {
        let r = rel().take(&[2, 0]);
        assert_eq!(r.num_rows(), 2);
        assert_eq!(r.value(0, "k").unwrap(), Value::I64(3));
        assert_eq!(r.value(1, "v").unwrap(), Value::F64(0.5));
    }

    #[test]
    fn lookups() {
        let r = rel();
        assert!(r.contains("k"));
        assert!(!r.contains("x"));
        assert_eq!(r.data_type("v").unwrap(), DataType::Float64);
        assert!(r.column("x").is_err());
    }

    #[test]
    fn to_text_renders_header_and_rows() {
        let text = rel().to_text(2);
        assert!(text.contains('k'));
        assert!(text.contains("1 more rows"));
    }
}
