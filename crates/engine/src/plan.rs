//! Logical plans and the fluent plan-builder API.
//!
//! The builder is the engine's public query interface (DESIGN.md §3): TPC-H
//! queries in `wimpi-queries` are expressed as builder chains, e.g.
//!
//! ```
//! use wimpi_engine::plan::PlanBuilder;
//! use wimpi_engine::expr::{col, dec2, date};
//! use wimpi_engine::plan::AggExpr;
//! let plan = PlanBuilder::scan("lineitem")
//!     .filter(col("l_shipdate").lt(date("1995-01-01")))
//!     .aggregate(vec![], vec![AggExpr::sum(
//!         col("l_extendedprice").mul(col("l_discount")),
//!         "revenue",
//!     )])
//!     .build();
//! ```

use crate::expr::Expr;

/// Join variants used by the TPC-H workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinType {
    /// Inner equi-join.
    Inner,
    /// Left semi join: keep left rows with ≥1 match.
    Semi,
    /// Left anti join: keep left rows with no match.
    Anti,
    /// Left outer join: unmatched left rows get type-default right values and
    /// a synthetic `__matched: Bool` column distinguishes them. This is how
    /// Q13's `count(o_orderkey)` over a left join is expressed without nulls
    /// (DESIGN.md §7).
    LeftOuter,
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `sum(expr)`.
    Sum,
    /// `avg(expr)` (always Float64).
    Avg,
    /// `min(expr)`.
    Min,
    /// `max(expr)`.
    Max,
    /// `count(*)`.
    CountStar,
    /// `count(...)` over a boolean expression: counts true rows.
    CountIf,
    /// `count(distinct expr)`.
    CountDistinct,
}

/// One aggregate in an [`LogicalPlan::Aggregate`] node.
#[derive(Debug, Clone, PartialEq)]
pub struct AggExpr {
    /// The function.
    pub func: AggFunc,
    /// Input expression (`None` only for `CountStar`).
    pub expr: Option<Expr>,
    /// Output column name.
    pub name: String,
}

impl AggExpr {
    /// `sum(expr) as name`.
    pub fn sum(expr: Expr, name: impl Into<String>) -> Self {
        Self { func: AggFunc::Sum, expr: Some(expr), name: name.into() }
    }

    /// `avg(expr) as name`.
    pub fn avg(expr: Expr, name: impl Into<String>) -> Self {
        Self { func: AggFunc::Avg, expr: Some(expr), name: name.into() }
    }

    /// `min(expr) as name`.
    pub fn min(expr: Expr, name: impl Into<String>) -> Self {
        Self { func: AggFunc::Min, expr: Some(expr), name: name.into() }
    }

    /// `max(expr) as name`.
    pub fn max(expr: Expr, name: impl Into<String>) -> Self {
        Self { func: AggFunc::Max, expr: Some(expr), name: name.into() }
    }

    /// `count(*) as name`.
    pub fn count_star(name: impl Into<String>) -> Self {
        Self { func: AggFunc::CountStar, expr: None, name: name.into() }
    }

    /// `count rows where bool expr is true, as name`.
    pub fn count_if(expr: Expr, name: impl Into<String>) -> Self {
        Self { func: AggFunc::CountIf, expr: Some(expr), name: name.into() }
    }

    /// `count(distinct expr) as name`.
    pub fn count_distinct(expr: Expr, name: impl Into<String>) -> Self {
        Self { func: AggFunc::CountDistinct, expr: Some(expr), name: name.into() }
    }
}

/// A sort key over a named output column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SortKey {
    /// Column name in the input relation.
    pub column: String,
    /// True for descending order.
    pub descending: bool,
}

impl SortKey {
    /// Ascending key.
    pub fn asc(column: impl Into<String>) -> Self {
        Self { column: column.into(), descending: false }
    }

    /// Descending key.
    pub fn desc(column: impl Into<String>) -> Self {
        Self { column: column.into(), descending: true }
    }
}

/// A logical query plan.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Base-table scan with optional column projection.
    Scan {
        /// Catalog table name.
        table: String,
        /// Columns to load (`None` = all).
        projection: Option<Vec<String>>,
    },
    /// Row filter.
    Filter {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Boolean predicate.
        predicate: Expr,
    },
    /// Column computation / renaming; output has exactly these columns.
    Project {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// `(expression, output name)` pairs.
        exprs: Vec<(Expr, String)>,
    },
    /// Hash equi-join. The right side is the build side.
    Join {
        /// Probe side.
        left: Box<LogicalPlan>,
        /// Build side.
        right: Box<LogicalPlan>,
        /// Equality pairs `(left column, right column)`.
        on: Vec<(String, String)>,
        /// Join variant.
        join_type: JoinType,
    },
    /// Hash group-by aggregation (empty `group_by` = one global group).
    Aggregate {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// `(expression, output name)` grouping keys.
        group_by: Vec<(Expr, String)>,
        /// Aggregates.
        aggs: Vec<AggExpr>,
    },
    /// Multi-key sort.
    Sort {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Keys, most significant first.
        keys: Vec<SortKey>,
    },
    /// First-`n` truncation.
    Limit {
        /// Input plan.
        input: Box<LogicalPlan>,
        /// Row cap.
        n: usize,
    },
}

impl LogicalPlan {
    /// The plan's direct inputs.
    pub fn inputs(&self) -> Vec<&LogicalPlan> {
        match self {
            LogicalPlan::Scan { .. } => vec![],
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. } => vec![input],
            LogicalPlan::Join { left, right, .. } => vec![left, right],
        }
    }

    /// Names of every base table referenced anywhere in the plan.
    pub fn tables(&self) -> Vec<String> {
        let mut out = Vec::new();
        fn walk(p: &LogicalPlan, out: &mut Vec<String>) {
            if let LogicalPlan::Scan { table, .. } = p {
                if !out.contains(table) {
                    out.push(table.clone());
                }
            }
            for c in p.inputs() {
                walk(c, out);
            }
        }
        walk(self, &mut out);
        out
    }

    /// Renders an indented plan tree (EXPLAIN-style).
    pub fn explain(&self) -> String {
        let mut out = String::new();
        fn walk(p: &LogicalPlan, depth: usize, out: &mut String) {
            let pad = "  ".repeat(depth);
            match p {
                LogicalPlan::Scan { table, projection } => {
                    out.push_str(&format!(
                        "{pad}Scan {table}{}\n",
                        projection
                            .as_ref()
                            .map(|p| format!(" [{}]", p.join(", ")))
                            .unwrap_or_default()
                    ));
                }
                LogicalPlan::Filter { predicate, .. } => {
                    out.push_str(&format!("{pad}Filter {predicate}\n"));
                }
                LogicalPlan::Project { exprs, .. } => {
                    let cols: Vec<String> =
                        exprs.iter().map(|(e, n)| format!("{e} AS {n}")).collect();
                    out.push_str(&format!("{pad}Project {}\n", cols.join(", ")));
                }
                LogicalPlan::Join { on, join_type, .. } => {
                    let keys: Vec<String> = on.iter().map(|(l, r)| format!("{l}={r}")).collect();
                    out.push_str(&format!("{pad}Join ({join_type:?}) on {}\n", keys.join(", ")));
                }
                LogicalPlan::Aggregate { group_by, aggs, .. } => {
                    let g: Vec<String> = group_by.iter().map(|(_, n)| n.clone()).collect();
                    let a: Vec<String> = aggs.iter().map(|x| x.name.clone()).collect();
                    out.push_str(&format!(
                        "{pad}Aggregate by [{}] -> [{}]\n",
                        g.join(", "),
                        a.join(", ")
                    ));
                }
                LogicalPlan::Sort { keys, .. } => {
                    let k: Vec<String> = keys
                        .iter()
                        .map(|k| format!("{}{}", k.column, if k.descending { " DESC" } else { "" }))
                        .collect();
                    out.push_str(&format!("{pad}Sort {}\n", k.join(", ")));
                }
                LogicalPlan::Limit { n, .. } => {
                    out.push_str(&format!("{pad}Limit {n}\n"));
                }
            }
            for c in p.inputs() {
                walk(c, depth + 1, out);
            }
        }
        walk(self, 0, &mut out);
        out
    }
}

/// Fluent builder over [`LogicalPlan`].
#[derive(Debug, Clone)]
pub struct PlanBuilder {
    plan: LogicalPlan,
}

impl PlanBuilder {
    /// Starts from a table scan.
    pub fn scan(table: impl Into<String>) -> Self {
        Self { plan: LogicalPlan::Scan { table: table.into(), projection: None } }
    }

    /// Starts from an existing plan.
    pub fn from_plan(plan: LogicalPlan) -> Self {
        Self { plan }
    }

    /// Adds a filter.
    pub fn filter(self, predicate: Expr) -> Self {
        Self { plan: LogicalPlan::Filter { input: Box::new(self.plan), predicate } }
    }

    /// Adds a projection; each pair is `(expr, output name)`.
    pub fn project(self, exprs: Vec<(Expr, &str)>) -> Self {
        Self {
            plan: LogicalPlan::Project {
                input: Box::new(self.plan),
                exprs: exprs.into_iter().map(|(e, n)| (e, n.to_string())).collect(),
            },
        }
    }

    /// Joins with another builder (`self` probes, `right` builds).
    pub fn join(self, right: PlanBuilder, on: Vec<(&str, &str)>, join_type: JoinType) -> Self {
        Self {
            plan: LogicalPlan::Join {
                left: Box::new(self.plan),
                right: Box::new(right.plan),
                on: on.into_iter().map(|(l, r)| (l.to_string(), r.to_string())).collect(),
                join_type,
            },
        }
    }

    /// Inner join shorthand.
    pub fn inner_join(self, right: PlanBuilder, on: Vec<(&str, &str)>) -> Self {
        self.join(right, on, JoinType::Inner)
    }

    /// Aggregates; `group_by` pairs are `(expr, output name)`.
    pub fn aggregate(self, group_by: Vec<(Expr, &str)>, aggs: Vec<AggExpr>) -> Self {
        Self {
            plan: LogicalPlan::Aggregate {
                input: Box::new(self.plan),
                group_by: group_by.into_iter().map(|(e, n)| (e, n.to_string())).collect(),
                aggs,
            },
        }
    }

    /// Sorts by keys.
    pub fn sort(self, keys: Vec<SortKey>) -> Self {
        Self { plan: LogicalPlan::Sort { input: Box::new(self.plan), keys } }
    }

    /// Truncates to `n` rows.
    pub fn limit(self, n: usize) -> Self {
        Self { plan: LogicalPlan::Limit { input: Box::new(self.plan), n } }
    }

    /// Finalizes the plan.
    pub fn build(self) -> LogicalPlan {
        self.plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};

    fn sample() -> LogicalPlan {
        PlanBuilder::scan("lineitem")
            .filter(col("l_quantity").lt(lit(24i64)))
            .inner_join(PlanBuilder::scan("orders"), vec![("l_orderkey", "o_orderkey")])
            .aggregate(vec![(col("o_orderpriority"), "prio")], vec![AggExpr::count_star("n")])
            .sort(vec![SortKey::asc("prio")])
            .limit(10)
            .build()
    }

    #[test]
    fn builder_nests_correctly() {
        let p = sample();
        assert!(matches!(p, LogicalPlan::Limit { n: 10, .. }));
        assert_eq!(p.tables(), vec!["lineitem".to_string(), "orders".into()]);
    }

    #[test]
    fn explain_renders_every_node() {
        let text = sample().explain();
        for needle in ["Limit 10", "Sort prio", "Aggregate by [prio]", "Join", "Filter", "Scan"] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }

    #[test]
    fn inputs_enumeration() {
        let p = sample();
        assert_eq!(p.inputs().len(), 1);
        let join =
            PlanBuilder::scan("a").inner_join(PlanBuilder::scan("b"), vec![("x", "y")]).build();
        assert_eq!(join.inputs().len(), 2);
    }

    #[test]
    fn agg_expr_constructors() {
        assert_eq!(AggExpr::count_star("n").func, AggFunc::CountStar);
        assert!(AggExpr::count_star("n").expr.is_none());
        assert_eq!(AggExpr::avg(col("x"), "a").func, AggFunc::Avg);
    }

    #[test]
    fn sort_key_constructors() {
        assert!(!SortKey::asc("a").descending);
        assert!(SortKey::desc("a").descending);
    }
}
