//! # wimpi-strategies
//!
//! Hand-coded single-threaded implementations of the eight choke-point
//! queries under the three execution paradigms the paper's §II-D3 evaluates
//! (from Crotty et al., "Getting Swole", ICDE 2020), plus the engine's own
//! compiled-fused paradigm:
//!
//! * **data-centric** — tuple-at-a-time fused pipelines; minimum bytes,
//!   maximum branches.
//! * **hybrid** — relaxed-operator-fusion: cache-resident batches staged
//!   through selection vectors.
//! * **access-aware** — predicate pullups: whole-column passes into masks,
//!   branch-free accumulation; extra memory traffic for consistent access.
//! * **compiled-fused** — the hybrid kernels with the staged selection
//!   vectors kept cache-resident instead of materialized: same vectorized
//!   evaluation work, but the per-batch intermediate write traffic
//!   collapses to zero (the engine's `Executor::Fused` morsel pipelines).
//!
//! Every (query, paradigm) pair computes an exact integer [`Digest`];
//! paradigms must agree with each other and (tested) with the engine. Each
//! run reports wall time *and* a [`WorkProfile`] so `wimpi-hwsim` can map
//! one host execution onto op-e5 / op-gold / Pi 3B+ for Figure 4.

// The kernels index several parallel arrays per loop — iterator zips would
// obscure the access patterns the paradigms are about.
#![allow(clippy::needless_range_loop)]

pub mod common;
mod q01;
mod q03;
mod q04;
mod q05;
mod q06;
mod q13;
mod q14;
mod q19;

use std::time::Instant;

use wimpi_engine::WorkProfile;
use wimpi_storage::Catalog;

/// The execution paradigms: the paper's three, plus the engine's
/// compiled-fused morsel pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Paradigm {
    /// Tuple-at-a-time fused pipelines.
    DataCentric,
    /// Vectorized relaxed operator fusion.
    Hybrid,
    /// Predicate-pullup, access-pattern-first execution.
    AccessAware,
    /// Compiled bytecode pipelines fusing scan→filter→eval→aggregate per
    /// morsel: hybrid's vectorized work minus all intermediate
    /// materialization (`Executor::Fused`).
    Fused,
}

impl Paradigm {
    /// All paradigms: the paper's three, worst-to-best per the source
    /// paper, then the engine's compiled-fused pipeline appended last so
    /// existing `[0..3]` indexing keeps its meaning.
    pub const ALL: [Paradigm; 4] =
        [Paradigm::DataCentric, Paradigm::Hybrid, Paradigm::AccessAware, Paradigm::Fused];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Paradigm::DataCentric => "data-centric",
            Paradigm::Hybrid => "hybrid",
            Paradigm::AccessAware => "access-aware",
            Paradigm::Fused => "compiled-fused",
        }
    }
}

/// An exact, strategy-independent result summary: cross-paradigm agreement
/// on `Digest` proves the implementations compute the same answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Digest {
    /// Result rows (groups) produced.
    pub rows: u64,
    /// Exact integer fold of the result values.
    pub checksum: i128,
}

/// One strategy execution: digest, measured host time, and modelled work.
#[derive(Debug, Clone, Copy)]
pub struct StrategyRun {
    /// Query number.
    pub query: usize,
    /// Paradigm used.
    pub paradigm: Paradigm,
    /// Result digest.
    pub digest: Digest,
    /// Host wall time, seconds.
    pub host_seconds: f64,
    /// Work counters for hardware-model pricing.
    pub work: WorkProfile,
}

/// The queries implemented (the paper's choke-point subset).
pub const STRATEGY_QUERIES: [usize; 8] = [1, 3, 4, 5, 6, 13, 14, 19];

/// Runs query `n` under `paradigm` against `catalog`, single-threaded.
///
/// Panics if `n` is not in [`STRATEGY_QUERIES`] — the paper hand-coded
/// exactly these eight.
pub fn run(n: usize, paradigm: Paradigm, catalog: &Catalog) -> StrategyRun {
    let mut work = WorkProfile::new();
    let start = Instant::now();
    let digest = {
        // Compiled-fused runs the hybrid kernels (same vectorized inner
        // loops, same answer); its pricing is fixed up after the run by
        // collapsing the staged-batch write traffic the compiled pipeline
        // never emits.
        let f = match (n, paradigm) {
            (1, Paradigm::DataCentric) => q01::data_centric,
            (1, Paradigm::Hybrid | Paradigm::Fused) => q01::hybrid,
            (1, Paradigm::AccessAware) => q01::access_aware,
            (3, Paradigm::DataCentric) => q03::data_centric,
            (3, Paradigm::Hybrid | Paradigm::Fused) => q03::hybrid,
            (3, Paradigm::AccessAware) => q03::access_aware,
            (4, Paradigm::DataCentric) => q04::data_centric,
            (4, Paradigm::Hybrid | Paradigm::Fused) => q04::hybrid,
            (4, Paradigm::AccessAware) => q04::access_aware,
            (5, Paradigm::DataCentric) => q05::data_centric,
            (5, Paradigm::Hybrid | Paradigm::Fused) => q05::hybrid,
            (5, Paradigm::AccessAware) => q05::access_aware,
            (6, Paradigm::DataCentric) => q06::data_centric,
            (6, Paradigm::Hybrid | Paradigm::Fused) => q06::hybrid,
            (6, Paradigm::AccessAware) => q06::access_aware,
            (13, Paradigm::DataCentric) => q13::data_centric,
            (13, Paradigm::Hybrid | Paradigm::Fused) => q13::hybrid,
            (13, Paradigm::AccessAware) => q13::access_aware,
            (14, Paradigm::DataCentric) => q14::data_centric,
            (14, Paradigm::Hybrid | Paradigm::Fused) => q14::hybrid,
            (14, Paradigm::AccessAware) => q14::access_aware,
            (19, Paradigm::DataCentric) => q19::data_centric,
            (19, Paradigm::Hybrid | Paradigm::Fused) => q19::hybrid,
            (19, Paradigm::AccessAware) => q19::access_aware,
            _ => panic!("strategy implementations cover queries {STRATEGY_QUERIES:?}, got {n}"),
        };
        f(catalog, &mut work)
    };
    if paradigm == Paradigm::Fused {
        common::Charge::fuse(&mut work);
    }
    StrategyRun { query: n, paradigm, digest, host_seconds: start.elapsed().as_secs_f64(), work }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_query_agrees_across_paradigms() {
        let cat = wimpi_tpch::Generator::new(0.003).generate_catalog().unwrap();
        for &q in &STRATEGY_QUERIES {
            let runs: Vec<StrategyRun> = Paradigm::ALL.iter().map(|&p| run(q, p, &cat)).collect();
            assert_eq!(runs[0].digest, runs[1].digest, "Q{q} data-centric vs hybrid");
            assert_eq!(runs[0].digest, runs[2].digest, "Q{q} data-centric vs access-aware");
            assert_eq!(runs[0].digest, runs[3].digest, "Q{q} data-centric vs compiled-fused");
            for r in &runs {
                assert!(r.work.cpu_ops > 0, "Q{q} {:?} recorded no work", r.paradigm);
            }
        }
    }

    #[test]
    fn paradigms_have_distinct_work_signatures() {
        let cat = wimpi_tpch::Generator::new(0.003).generate_catalog().unwrap();
        let dc = run(6, Paradigm::DataCentric, &cat).work;
        let aa = run(6, Paradigm::AccessAware, &cat).work;
        assert!(aa.seq_bytes() > dc.seq_bytes(), "pullup streams more bytes");
        assert!(dc.cpu_ops > aa.cpu_ops, "branchy per-row work costs more CPU units");
    }

    #[test]
    fn fused_collapses_hybrid_write_traffic() {
        let cat = wimpi_tpch::Generator::new(0.003).generate_catalog().unwrap();
        for &q in &STRATEGY_QUERIES {
            let hy = run(q, Paradigm::Hybrid, &cat);
            let fu = run(q, Paradigm::Fused, &cat);
            assert_eq!(hy.digest, fu.digest, "Q{q} fused answer must match hybrid");
            assert!(
                fu.work.cpu_ops < hy.work.cpu_ops,
                "Q{q} compiled dispatch must shed the per-batch staging cpu"
            );
            assert_eq!(fu.work.seq_read_bytes, hy.work.seq_read_bytes, "Q{q} same input stream");
            assert!(hy.work.seq_write_bytes > 0, "Q{q} hybrid stages batches");
            assert_eq!(fu.work.seq_write_bytes, 0, "Q{q} fused materializes nothing");
        }
    }

    #[test]
    #[should_panic(expected = "strategy implementations cover")]
    fn unimplemented_query_panics() {
        let cat = wimpi_tpch::Generator::new(0.001).generate_catalog().unwrap();
        run(2, Paradigm::Hybrid, &cat);
    }
}
