//! Q14 under the three paradigms: selective scan + foreign-key lookup into
//! part (promo flag), two sums.

use crate::common::{dict_col, i64_col, Charge, Lineitem, BATCH};
use crate::Digest;
use wimpi_engine::like::like_match;
use wimpi_engine::WorkProfile;
use wimpi_storage::{Catalog, Date32};

fn window() -> (i32, i32) {
    (Date32::from_ymd(1995, 9, 1).0, Date32::from_ymd(1995, 10, 1).0)
}

/// Dense `partkey → is PROMO` lookup (the build side all strategies share).
fn promo_by_part(cat: &Catalog, prof: &mut WorkProfile) -> Vec<bool> {
    let part = cat.table("part").expect("part registered");
    let keys = i64_col(part, "p_partkey");
    let types = dict_col(part, "p_type");
    let promo_value: Vec<bool> = types.values().iter().map(|v| like_match(v, "PROMO%")).collect();
    let max_key = keys.iter().copied().max().unwrap_or(0) as usize;
    let mut lut = vec![false; max_key + 1];
    for (i, &k) in keys.iter().enumerate() {
        lut[k as usize] = promo_value[types.code(i) as usize];
    }
    prof.cpu_ops += keys.len() as u64 * 2;
    prof.seq_read_bytes += keys.len() as u64 * 12;
    prof.hash_bytes = prof.hash_bytes.max(lut.len() as u64);
    lut
}

fn digest(promo: i128, total: i128) -> Digest {
    Digest { rows: 1, checksum: promo * 1_000 + total }
}

/// Data-centric: fused predicate + probe + accumulate loop.
pub fn data_centric(cat: &Catalog, prof: &mut WorkProfile) -> Digest {
    let li = Lineitem::bind(cat);
    let lut = promo_by_part(cat, prof);
    let (lo, hi) = window();
    let (mut promo, mut total) = (0i128, 0i128);
    let mut sel = 0u64;
    for i in 0..li.len() {
        if li.shipdate[i] >= lo && li.shipdate[i] < hi {
            sel += 1;
            let dp = li.extendedprice[i] as i128 * (100 - li.discount[i]) as i128;
            total += dp;
            if lut[li.partkey[i] as usize] {
                promo += dp;
            }
        }
    }
    Charge::data_centric(prof, li.len() as u64 + sel * 2);
    Charge::probes(prof, sel, lut.len() as u64);
    digest(promo, total)
}

/// Hybrid: batch selection then batched probes.
pub fn hybrid(cat: &Catalog, prof: &mut WorkProfile) -> Digest {
    let li = Lineitem::bind(cat);
    let lut = promo_by_part(cat, prof);
    let (lo, hi) = window();
    let (mut promo, mut total) = (0i128, 0i128);
    let mut sel_buf = [0u32; BATCH];
    let (mut sel_total, mut batches) = (0u64, 0u64);
    let n = li.len();
    let mut base = 0;
    while base < n {
        let end = (base + BATCH).min(n);
        batches += 1;
        let mut nsel = 0;
        for i in base..end {
            sel_buf[nsel] = i as u32;
            nsel += usize::from(li.shipdate[i] >= lo && li.shipdate[i] < hi);
        }
        sel_total += nsel as u64;
        for &iu in &sel_buf[..nsel] {
            let i = iu as usize;
            let dp = li.extendedprice[i] as i128 * (100 - li.discount[i]) as i128;
            total += dp;
            promo += dp * i128::from(lut[li.partkey[i] as usize]);
        }
        base = end;
    }
    Charge::hybrid(prof, n as u64 + sel_total * 2, batches);
    Charge::probes(prof, sel_total, lut.len() as u64);
    digest(promo, total)
}

/// Access-aware: predicate pullup into a mask, then a branch-free masked
/// probe/accumulate pass over every row.
pub fn access_aware(cat: &Catalog, prof: &mut WorkProfile) -> Digest {
    let li = Lineitem::bind(cat);
    let lut = promo_by_part(cat, prof);
    let (lo, hi) = window();
    let n = li.len();
    let mask: Vec<i64> = li.shipdate.iter().map(|&d| i64::from(d >= lo && d < hi)).collect();
    let (mut promo, mut total) = (0i128, 0i128);
    for i in 0..n {
        let m = mask[i];
        let dp = (li.extendedprice[i] * m) as i128 * (100 - li.discount[i]) as i128;
        total += dp;
        promo += dp * i128::from(lut[li.partkey[i] as usize]);
    }
    Charge::access_aware(prof, n as u64, 3);
    Charge::probes(prof, n as u64, lut.len() as u64);
    digest(promo, total)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_strategies_agree() {
        let cat = wimpi_tpch::Generator::new(0.002).generate_catalog().unwrap();
        let mut p = WorkProfile::new();
        let dc = data_centric(&cat, &mut p);
        assert_eq!(dc, hybrid(&cat, &mut p));
        assert_eq!(dc, access_aware(&cat, &mut p));
    }
}
