//! Q19 under the three paradigms: disjunctive brand/container/quantity
//! classes, part lookup, one sum.

use crate::common::{dict_col, i32_col, i64_col, Charge, Lineitem, BATCH};
use crate::Digest;
use wimpi_engine::WorkProfile;
use wimpi_storage::Catalog;

/// Quantity windows (mantissa cents) per class, classes 1–3; 0 = no class.
const QTY: [(i64, i64); 4] = [(0, -1), (100, 1100), (1000, 2000), (2000, 3000)];

/// Dense `partkey → class` (0 if the part qualifies for no class).
fn class_by_part(cat: &Catalog, prof: &mut WorkProfile) -> Vec<u8> {
    let part = cat.table("part").expect("part registered");
    let keys = i64_col(part, "p_partkey");
    let brands = dict_col(part, "p_brand");
    let containers = dict_col(part, "p_container");
    let sizes = i32_col(part, "p_size");
    let classify = |brand: &str, container: &str, size: i32| -> u8 {
        let in_set = |set: [&str; 4]| set.contains(&container);
        if brand == "Brand#12"
            && in_set(["SM CASE", "SM BOX", "SM PACK", "SM PKG"])
            && (1..=5).contains(&size)
        {
            1
        } else if brand == "Brand#23"
            && in_set(["MED BAG", "MED BOX", "MED PKG", "MED PACK"])
            && (1..=10).contains(&size)
        {
            2
        } else if brand == "Brand#34"
            && in_set(["LG CASE", "LG BOX", "LG PACK", "LG PKG"])
            && (1..=15).contains(&size)
        {
            3
        } else {
            0
        }
    };
    let max_key = keys.iter().copied().max().unwrap_or(0) as usize;
    let mut lut = vec![0u8; max_key + 1];
    for (i, &k) in keys.iter().enumerate() {
        lut[k as usize] = classify(brands.get(i), containers.get(i), sizes[i]);
    }
    prof.cpu_ops += keys.len() as u64 * 4;
    prof.seq_read_bytes += keys.len() as u64 * 20;
    prof.hash_bytes = prof.hash_bytes.max(lut.len() as u64);
    lut
}

/// Shipping predicate dictionary masks (evaluated once per distinct value).
fn ship_masks(li: &Lineitem) -> (Vec<bool>, Vec<bool>) {
    let mode_ok: Vec<bool> =
        li.shipmode.values().iter().map(|v| v == "AIR" || v == "REG AIR").collect();
    let instr_ok: Vec<bool> =
        li.shipinstruct.values().iter().map(|v| v == "DELIVER IN PERSON").collect();
    (mode_ok, instr_ok)
}

fn digest(revenue: i128, sel: u64) -> Digest {
    Digest { rows: 1, checksum: revenue + sel as i128 }
}

/// Data-centric: fused loop, short-circuit everything.
pub fn data_centric(cat: &Catalog, prof: &mut WorkProfile) -> Digest {
    let li = Lineitem::bind(cat);
    let lut = class_by_part(cat, prof);
    let (mode_ok, instr_ok) = ship_masks(&li);
    let (mut revenue, mut sel, mut evals) = (0i128, 0u64, 0u64);
    for i in 0..li.len() {
        evals += 1;
        if !mode_ok[li.shipmode.code(i) as usize] || !instr_ok[li.shipinstruct.code(i) as usize] {
            continue;
        }
        evals += 1;
        let class = lut[li.partkey[i] as usize] as usize;
        if class == 0 {
            continue;
        }
        evals += 1;
        let (qlo, qhi) = QTY[class];
        if li.quantity[i] < qlo || li.quantity[i] > qhi {
            continue;
        }
        sel += 1;
        revenue += li.extendedprice[i] as i128 * (100 - li.discount[i]) as i128;
    }
    Charge::data_centric(prof, evals + sel * 2);
    Charge::probes(prof, li.len() as u64 / 4, lut.len() as u64);
    digest(revenue, sel)
}

/// Hybrid: staged batch refinement.
pub fn hybrid(cat: &Catalog, prof: &mut WorkProfile) -> Digest {
    let li = Lineitem::bind(cat);
    let lut = class_by_part(cat, prof);
    let (mode_ok, instr_ok) = ship_masks(&li);
    let (mut revenue, mut sel_total, mut evals, mut batches) = (0i128, 0u64, 0u64, 0u64);
    let mut a = [0u32; BATCH];
    let n = li.len();
    let mut base = 0;
    while base < n {
        let end = (base + BATCH).min(n);
        batches += 1;
        let mut na = 0;
        for i in base..end {
            a[na] = i as u32;
            na += usize::from(
                mode_ok[li.shipmode.code(i) as usize] && instr_ok[li.shipinstruct.code(i) as usize],
            );
        }
        evals += (end - base) as u64;
        for &iu in &a[..na] {
            let i = iu as usize;
            evals += 2;
            let class = lut[li.partkey[i] as usize] as usize;
            let (qlo, qhi) = QTY[class];
            if class != 0 && li.quantity[i] >= qlo && li.quantity[i] <= qhi {
                sel_total += 1;
                revenue += li.extendedprice[i] as i128 * (100 - li.discount[i]) as i128;
            }
        }
        base = end;
    }
    Charge::hybrid(prof, evals + sel_total * 2, batches);
    Charge::probes(prof, n as u64 / 4, lut.len() as u64);
    digest(revenue, sel_total)
}

/// Access-aware: every predicate pulled up into full-column masks, probes
/// performed for every row, final branch-free accumulation.
pub fn access_aware(cat: &Catalog, prof: &mut WorkProfile) -> Digest {
    let li = Lineitem::bind(cat);
    let lut = class_by_part(cat, prof);
    let (mode_ok, instr_ok) = ship_masks(&li);
    let n = li.len();
    let mut mask: Vec<i64> = (0..n)
        .map(|i| {
            i64::from(
                mode_ok[li.shipmode.code(i) as usize] && instr_ok[li.shipinstruct.code(i) as usize],
            )
        })
        .collect();
    // Class pass: probe part for every row, mask afterwards.
    let classes: Vec<u8> = (0..n).map(|i| lut[li.partkey[i] as usize]).collect();
    for i in 0..n {
        let class = classes[i] as usize;
        let (qlo, qhi) = QTY[class];
        mask[i] &= i64::from(class != 0 && li.quantity[i] >= qlo && li.quantity[i] <= qhi);
    }
    let (mut revenue, mut sel) = (0i128, 0u64);
    for i in 0..n {
        sel += mask[i] as u64;
        revenue += (li.extendedprice[i] * mask[i]) as i128 * (100 - li.discount[i]) as i128;
    }
    Charge::access_aware(prof, n as u64, 4);
    Charge::probes(prof, n as u64, lut.len() as u64);
    digest(revenue, sel)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_strategies_agree() {
        let cat = wimpi_tpch::Generator::new(0.005).generate_catalog().unwrap();
        let mut p = WorkProfile::new();
        let dc = data_centric(&cat, &mut p);
        assert_eq!(dc, hybrid(&cat, &mut p));
        assert_eq!(dc, access_aware(&cat, &mut p));
    }
}
