//! Shared machinery for the hand-coded strategies: typed column views,
//! work-charging helpers, and the batch size the hybrid strategy stages at.

use wimpi_engine::WorkProfile;
use wimpi_storage::{Catalog, Column, Table};

/// Hybrid (relaxed-operator-fusion) batch size: big enough to amortize
/// per-batch overhead, small enough to stay cache-resident — the ROF paper's
/// staging rationale.
pub const BATCH: usize = 1024;

/// Borrowed raw views over the lineitem columns the eight queries touch.
pub struct Lineitem<'a> {
    pub orderkey: &'a [i64],
    pub partkey: &'a [i64],
    pub suppkey: &'a [i64],
    pub quantity: &'a [i64],
    pub extendedprice: &'a [i64],
    pub discount: &'a [i64],
    pub tax: &'a [i64],
    pub returnflag: &'a wimpi_storage::DictColumn,
    pub linestatus: &'a wimpi_storage::DictColumn,
    pub shipdate: &'a [i32],
    pub commitdate: &'a [i32],
    pub receiptdate: &'a [i32],
    pub shipinstruct: &'a wimpi_storage::DictColumn,
    pub shipmode: &'a wimpi_storage::DictColumn,
}

impl<'a> Lineitem<'a> {
    /// Borrows the raw columns from a catalog.
    pub fn bind(catalog: &'a Catalog) -> Lineitem<'a> {
        let t = catalog.table("lineitem").expect("lineitem registered");
        Lineitem {
            orderkey: i64_col(t, "l_orderkey"),
            partkey: i64_col(t, "l_partkey"),
            suppkey: i64_col(t, "l_suppkey"),
            quantity: dec_col(t, "l_quantity"),
            extendedprice: dec_col(t, "l_extendedprice"),
            discount: dec_col(t, "l_discount"),
            tax: dec_col(t, "l_tax"),
            returnflag: dict_col(t, "l_returnflag"),
            linestatus: dict_col(t, "l_linestatus"),
            shipdate: date_col(t, "l_shipdate"),
            commitdate: date_col(t, "l_commitdate"),
            receiptdate: date_col(t, "l_receiptdate"),
            shipinstruct: dict_col(t, "l_shipinstruct"),
            shipmode: dict_col(t, "l_shipmode"),
        }
    }

    /// Row count.
    pub fn len(&self) -> usize {
        self.orderkey.len()
    }

    /// True when the partition is empty.
    pub fn is_empty(&self) -> bool {
        self.orderkey.is_empty()
    }
}

/// Borrows an `Int64` column.
pub fn i64_col<'a>(t: &'a Table, name: &str) -> &'a [i64] {
    match t.column_by_name(name).expect("column exists").as_ref() {
        Column::Int64(v) => v,
        other => panic!("{name} is {:?}, expected int64", other.data_type()),
    }
}

/// Borrows a decimal column's mantissas.
pub fn dec_col<'a>(t: &'a Table, name: &str) -> &'a [i64] {
    match t.column_by_name(name).expect("column exists").as_ref() {
        Column::Decimal(v, _) => v,
        other => panic!("{name} is {:?}, expected decimal", other.data_type()),
    }
}

/// Borrows a date column's day numbers.
pub fn date_col<'a>(t: &'a Table, name: &str) -> &'a [i32] {
    match t.column_by_name(name).expect("column exists").as_ref() {
        Column::Date(v) => v,
        other => panic!("{name} is {:?}, expected date", other.data_type()),
    }
}

/// Borrows a dictionary column.
pub fn dict_col<'a>(t: &'a Table, name: &str) -> &'a wimpi_storage::DictColumn {
    match t.column_by_name(name).expect("column exists").as_ref() {
        Column::Str(d) => d,
        other => panic!("{name} is {:?}, expected utf8", other.data_type()),
    }
}

/// Borrows an `Int32` column.
pub fn i32_col<'a>(t: &'a Table, name: &str) -> &'a [i32] {
    match t.column_by_name(name).expect("column exists").as_ref() {
        Column::Int32(v) => v,
        other => panic!("{name} is {:?}, expected int32", other.data_type()),
    }
}

/// Work-charging helpers matching the three paradigms' access characters.
pub struct Charge;

impl Charge {
    /// Data-centric: `evals` branchy per-row predicate evaluations, each
    /// touching 8 bytes. Short-circuiting saves bytes but every evaluation
    /// is a data-dependent branch — charged at 5 work units to model the
    /// mispredict stalls that make tuple-at-a-time the slowest paradigm in
    /// the source paper.
    pub fn data_centric(prof: &mut WorkProfile, evals: u64) {
        prof.cpu_ops += evals * 5;
        prof.seq_read_bytes += evals * 8;
    }

    /// Hybrid (ROF): vectorized inner loops (cheap per evaluation) but each
    /// batch crosses operator stages — per-batch dispatch, selection-vector
    /// staging, and instruction-cache churn cost ≈2 units/row on top.
    pub fn hybrid(prof: &mut WorkProfile, evals: u64, batches: u64) {
        prof.cpu_ops += evals * 3 / 2 + batches * 2 * BATCH as u64;
        prof.seq_read_bytes += evals * 8;
        prof.seq_write_bytes += batches * BATCH as u64 * 4; // staged sel-vectors
    }

    /// Access-aware: branch-free, perfectly predictable full-column passes —
    /// the cheapest per element (SIMD-able, ~0.5 units) at the price of
    /// streaming every column plus a mask on every pass. The byte surcharge
    /// is what makes the paradigm's advantage "less pronounced" on the
    /// bandwidth-starved Pi (paper §II-D3).
    pub fn access_aware(prof: &mut WorkProfile, rows: u64, passes: u64) {
        prof.cpu_ops += rows * passes / 2;
        prof.seq_read_bytes += rows * passes * 8 + rows * passes; // column + mask
        prof.seq_write_bytes += rows * passes; // mask writes
    }

    /// Compiled-fused: reprice a hybrid run as the engine's fused morsel
    /// pipeline. The vectorized evaluation work is identical, but the
    /// per-batch cross-operator handoff disappears — the compiled bytecode
    /// is dispatched once per morsel, its selection vectors live in
    /// cache-resident scratch that is never written back, and no
    /// intermediate column is materialized. [`Charge::hybrid`] priced that
    /// staging at 2 cpu units and 4 written bytes per batched row, and in a
    /// hybrid run the staged selection vectors are the *only* source of
    /// `seq_write_bytes`, so both terms are exactly invertible here: the
    /// materialized-bytes term collapses to zero and the dispatch surcharge
    /// (half the staged bytes) comes off the cpu total. On a
    /// bandwidth-starved node the erased write stream is a far bigger share
    /// of total time than on a server, which is what shifts the Pi-vs-Xeon
    /// picture.
    pub fn fuse(prof: &mut WorkProfile) {
        prof.cpu_ops -= prof.seq_write_bytes / 2;
        prof.seq_write_bytes = 0;
    }

    /// A hash probe stream (same for all paradigms).
    pub fn probes(prof: &mut WorkProfile, n: u64, table_bytes: u64) {
        prof.cpu_ops += 2 * n;
        prof.rand_accesses += n;
        prof.hash_bytes = prof.hash_bytes.max(table_bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_distinctly() {
        // One full batch of work under each paradigm.
        let n = BATCH as u64;
        let mut a = WorkProfile::new();
        Charge::data_centric(&mut a, n);
        let mut b = WorkProfile::new();
        Charge::access_aware(&mut b, n, 1);
        assert!(a.cpu_ops > b.cpu_ops, "branchy per-row work costs more CPU");
        assert!(b.seq_bytes() > a.seq_bytes(), "pullup streams more bytes");
        let mut h = WorkProfile::new();
        Charge::hybrid(&mut h, n, 1);
        assert!(h.cpu_ops < a.cpu_ops, "vectorized batches beat tuple-at-a-time");
        assert!(h.cpu_ops > b.cpu_ops, "staging costs more than pure pullup passes");
    }

    #[test]
    fn probe_charge_tracks_table_size() {
        let mut p = WorkProfile::new();
        Charge::probes(&mut p, 10, 1 << 20);
        Charge::probes(&mut p, 10, 1 << 10);
        assert_eq!(p.hash_bytes, 1 << 20, "peak table size wins");
        assert_eq!(p.rand_accesses, 20);
    }
}
