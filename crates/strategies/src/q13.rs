//! Q13 under the three paradigms: left outer count of orders per customer,
//! then a histogram of counts. No lineitem involvement (the paper's
//! single-node query).

use std::collections::HashMap;

use crate::common::{dict_col, i64_col, Charge, BATCH};
use crate::Digest;
use wimpi_engine::like::like_match;
use wimpi_engine::WorkProfile;
use wimpi_storage::Catalog;

/// Pattern mask over the o_comment dictionary (evaluated once per value —
/// the documented comment-pool substitution keeps this cheap).
fn comment_ok(cat: &Catalog) -> (Vec<bool>, usize) {
    let orders = cat.table("orders").expect("orders registered");
    let comments = dict_col(orders, "o_comment");
    let ok: Vec<bool> =
        comments.values().iter().map(|v| !like_match(v, "%special%requests%")).collect();
    (ok, orders.num_rows())
}

fn num_customers(cat: &Catalog) -> usize {
    cat.table("customer").expect("customer registered").num_rows()
}

fn digest(counts: &[u32], customers: usize) -> Digest {
    let mut hist: HashMap<u32, u64> = HashMap::new();
    for &c in &counts[1..=customers] {
        *hist.entry(c).or_insert(0) += 1;
    }
    Digest {
        rows: hist.len() as u64,
        checksum: hist.iter().map(|(&c_count, &dist)| (c_count as i128 + 1) * dist as i128).sum(),
    }
}

/// Data-centric: one branchy pass over orders scattering into per-customer
/// counters.
pub fn data_centric(cat: &Catalog, prof: &mut WorkProfile) -> Digest {
    let (ok, _) = comment_ok(cat);
    let orders = cat.table("orders").expect("orders registered");
    let ocust = i64_col(orders, "o_custkey");
    let comments = dict_col(orders, "o_comment");
    let customers = num_customers(cat);
    let mut counts = vec![0u32; customers + 1];
    let mut sel = 0u64;
    for i in 0..ocust.len() {
        if ok[comments.code(i) as usize] {
            sel += 1;
            counts[ocust[i] as usize] += 1;
        }
    }
    Charge::data_centric(prof, ocust.len() as u64 + sel);
    Charge::probes(prof, sel, counts.len() as u64 * 4);
    digest(&counts, customers)
}

/// Hybrid: batch the comment predicate, scatter survivors.
pub fn hybrid(cat: &Catalog, prof: &mut WorkProfile) -> Digest {
    let (ok, n) = comment_ok(cat);
    let orders = cat.table("orders").expect("orders registered");
    let ocust = i64_col(orders, "o_custkey");
    let comments = dict_col(orders, "o_comment");
    let customers = num_customers(cat);
    let mut counts = vec![0u32; customers + 1];
    let mut sel_buf = [0u32; BATCH];
    let (mut sel_total, mut batches) = (0u64, 0u64);
    let mut base = 0;
    while base < n {
        let end = (base + BATCH).min(n);
        batches += 1;
        let mut nsel = 0;
        for i in base..end {
            sel_buf[nsel] = i as u32;
            nsel += usize::from(ok[comments.code(i) as usize]);
        }
        sel_total += nsel as u64;
        for &iu in &sel_buf[..nsel] {
            counts[ocust[iu as usize] as usize] += 1;
        }
        base = end;
    }
    Charge::hybrid(prof, n as u64 + sel_total, batches);
    Charge::probes(prof, sel_total, counts.len() as u64 * 4);
    digest(&counts, customers)
}

/// Access-aware: comment mask pulled up over the whole column, branch-free
/// masked scatter.
pub fn access_aware(cat: &Catalog, prof: &mut WorkProfile) -> Digest {
    let (ok, n) = comment_ok(cat);
    let orders = cat.table("orders").expect("orders registered");
    let ocust = i64_col(orders, "o_custkey");
    let comments = dict_col(orders, "o_comment");
    let customers = num_customers(cat);
    let mask: Vec<u32> = (0..n).map(|i| u32::from(ok[comments.code(i) as usize])).collect();
    let mut counts = vec![0u32; customers + 1];
    for i in 0..n {
        counts[ocust[i] as usize] += mask[i];
    }
    Charge::access_aware(prof, n as u64, 2);
    Charge::probes(prof, n as u64, counts.len() as u64 * 4);
    digest(&counts, customers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_strategies_agree() {
        let cat = wimpi_tpch::Generator::new(0.005).generate_catalog().unwrap();
        let mut p = WorkProfile::new();
        let dc = data_centric(&cat, &mut p);
        assert_eq!(dc, hybrid(&cat, &mut p));
        assert_eq!(dc, access_aware(&cat, &mut p));
        assert!(dc.rows >= 2, "zero-order customers form their own bucket");
    }
}
