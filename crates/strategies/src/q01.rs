//! Q1 under the three paradigms: one selective scan feeding eight
//! aggregates over a four-group key.

use crate::common::{Charge, Lineitem, BATCH};
use crate::Digest;
use wimpi_engine::WorkProfile;
use wimpi_storage::{Catalog, Date32};

const GROUPS: usize = 64;

#[derive(Clone, Copy, Default)]
struct Acc {
    count: i64,
    sum_qty: i128,
    sum_base: i128,
    sum_disc_price: i128,
    sum_charge: i128,
    sum_disc: i128,
}

fn cutoff() -> i32 {
    Date32::from_ymd(1998, 9, 2).0
}

#[inline]
fn accumulate(acc: &mut Acc, qty: i64, ext: i64, disc: i64, tax: i64) {
    acc.count += 1;
    acc.sum_qty += qty as i128;
    acc.sum_base += ext as i128;
    let dp = ext as i128 * (100 - disc) as i128;
    acc.sum_disc_price += dp;
    acc.sum_charge += dp * (100 + tax) as i128;
    acc.sum_disc += disc as i128;
}

fn digest(groups: &[Acc; GROUPS]) -> Digest {
    let mut rows = 0u64;
    let mut checksum = 0i128;
    for (g, a) in groups.iter().enumerate() {
        if a.count == 0 {
            continue;
        }
        rows += 1;
        checksum += (g as i128 + 1)
            * (a.count as i128
                + a.sum_qty
                + a.sum_base
                + a.sum_disc_price
                + a.sum_charge
                + a.sum_disc);
    }
    Digest { rows, checksum }
}

#[inline]
fn gid(rf: u32, ls: u32) -> usize {
    debug_assert!(rf < 8 && ls < 8, "dictionary codes stay tiny");
    (rf * 8 + ls) as usize
}

/// Data-centric: one fused, branchy row loop.
pub fn data_centric(cat: &Catalog, prof: &mut WorkProfile) -> Digest {
    let li = Lineitem::bind(cat);
    let cut = cutoff();
    let mut groups = [Acc::default(); GROUPS];
    let mut sel = 0u64;
    for i in 0..li.len() {
        if li.shipdate[i] <= cut {
            sel += 1;
            let g = gid(li.returnflag.code(i), li.linestatus.code(i));
            accumulate(
                &mut groups[g],
                li.quantity[i],
                li.extendedprice[i],
                li.discount[i],
                li.tax[i],
            );
        }
    }
    Charge::data_centric(prof, li.len() as u64 + sel * 6);
    digest(&groups)
}

/// Hybrid: batch-staged selection vectors, vectorized accumulation.
pub fn hybrid(cat: &Catalog, prof: &mut WorkProfile) -> Digest {
    let li = Lineitem::bind(cat);
    let cut = cutoff();
    let mut groups = [Acc::default(); GROUPS];
    let mut sel_buf = [0u32; BATCH];
    let mut total_sel = 0u64;
    let mut batches = 0u64;
    let n = li.len();
    let mut base = 0;
    while base < n {
        let end = (base + BATCH).min(n);
        batches += 1;
        let mut nsel = 0;
        for i in base..end {
            // Vectorizable compare into a selection vector.
            sel_buf[nsel] = i as u32;
            nsel += usize::from(li.shipdate[i] <= cut);
        }
        total_sel += nsel as u64;
        for &iu in &sel_buf[..nsel] {
            let i = iu as usize;
            let g = gid(li.returnflag.code(i), li.linestatus.code(i));
            accumulate(
                &mut groups[g],
                li.quantity[i],
                li.extendedprice[i],
                li.discount[i],
                li.tax[i],
            );
        }
        base = end;
    }
    Charge::hybrid(prof, n as u64 + total_sel * 6, batches);
    digest(&groups)
}

/// Access-aware: a full-column predicate pullup pass, then branch-free
/// masked accumulation passes.
pub fn access_aware(cat: &Catalog, prof: &mut WorkProfile) -> Digest {
    let li = Lineitem::bind(cat);
    let cut = cutoff();
    let n = li.len();
    // Pass 1: pull the predicate up into a dense mask.
    let mask: Vec<i64> = li.shipdate.iter().map(|&d| i64::from(d <= cut)).collect();
    // Pass 2: masked accumulation, sequential over every column.
    let mut groups = [Acc::default(); GROUPS];
    for i in 0..n {
        let m = mask[i];
        let g = gid(li.returnflag.code(i), li.linestatus.code(i));
        let a = &mut groups[g];
        a.count += m;
        a.sum_qty += (li.quantity[i] * m) as i128;
        a.sum_base += (li.extendedprice[i] * m) as i128;
        let dp = (li.extendedprice[i] * m) as i128 * (100 - li.discount[i]) as i128;
        a.sum_disc_price += dp;
        a.sum_charge += dp * (100 + li.tax[i]) as i128;
        a.sum_disc += (li.discount[i] * m) as i128;
    }
    Charge::access_aware(prof, n as u64, 6);
    digest(&groups)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_strategies_agree() {
        let cat = wimpi_tpch::Generator::new(0.002).generate_catalog().unwrap();
        let mut p = WorkProfile::new();
        let dc = data_centric(&cat, &mut p);
        let hy = hybrid(&cat, &mut p);
        let aa = access_aware(&cat, &mut p);
        assert_eq!(dc, hy);
        assert_eq!(dc, aa);
        assert_eq!(dc.rows, 4, "four (returnflag, linestatus) groups");
    }
}
