//! Q4 under the three paradigms: EXISTS (semi join) from orders into late
//! lineitems, counted per order priority.

use std::collections::HashSet;

use crate::common::{date_col, dict_col, i64_col, Charge, Lineitem, BATCH};
use crate::Digest;
use wimpi_engine::WorkProfile;
use wimpi_storage::{Catalog, Date32};

fn window() -> (i32, i32) {
    (Date32::from_ymd(1993, 7, 1).0, Date32::from_ymd(1993, 10, 1).0)
}

fn digest_from_counts(counts: &[i64]) -> Digest {
    Digest {
        rows: counts.iter().filter(|&&c| c > 0).count() as u64,
        checksum: counts.iter().enumerate().map(|(i, &c)| (i as i128 + 1) * c as i128).sum(),
    }
}

/// Counts per priority given the set of order keys with a late lineitem.
fn count_orders(cat: &Catalog, late: &HashSet<i64>, prof: &mut WorkProfile) -> Digest {
    let orders = cat.table("orders").expect("orders registered");
    let okeys = i64_col(orders, "o_orderkey");
    let odate = date_col(orders, "o_orderdate");
    let prio = dict_col(orders, "o_orderpriority");
    // Rank priorities by value so counts are dictionary-order independent.
    let mut ranked: Vec<(String, u32)> =
        prio.values().iter().enumerate().map(|(c, v)| (v.clone(), c as u32)).collect();
    ranked.sort();
    let mut rank_of_code = vec![0usize; prio.cardinality()];
    for (r, (_, code)) in ranked.iter().enumerate() {
        rank_of_code[*code as usize] = r;
    }
    let (lo, hi) = window();
    let mut counts = vec![0i64; prio.cardinality().max(1)];
    for i in 0..okeys.len() {
        if odate[i] >= lo && odate[i] < hi && late.contains(&okeys[i]) {
            counts[rank_of_code[prio.code(i) as usize]] += 1;
        }
    }
    prof.cpu_ops += okeys.len() as u64 * 2;
    prof.seq_read_bytes += okeys.len() as u64 * 16;
    prof.rand_accesses += okeys.len() as u64 / 8;
    digest_from_counts(&counts)
}

/// Data-centric: branchy fused pass building the late-order set.
pub fn data_centric(cat: &Catalog, prof: &mut WorkProfile) -> Digest {
    let li = Lineitem::bind(cat);
    let mut late = HashSet::new();
    let mut sel = 0u64;
    for i in 0..li.len() {
        if li.commitdate[i] < li.receiptdate[i] {
            sel += 1;
            late.insert(li.orderkey[i]);
        }
    }
    Charge::data_centric(prof, li.len() as u64 + sel);
    Charge::probes(prof, sel, late.len() as u64 * 24);
    count_orders(cat, &late, prof)
}

/// Hybrid: batch the date comparison, insert survivors.
pub fn hybrid(cat: &Catalog, prof: &mut WorkProfile) -> Digest {
    let li = Lineitem::bind(cat);
    let mut late = HashSet::new();
    let mut sel_buf = [0u32; BATCH];
    let (mut sel_total, mut batches) = (0u64, 0u64);
    let n = li.len();
    let mut base = 0;
    while base < n {
        let end = (base + BATCH).min(n);
        batches += 1;
        let mut nsel = 0;
        for i in base..end {
            sel_buf[nsel] = i as u32;
            nsel += usize::from(li.commitdate[i] < li.receiptdate[i]);
        }
        sel_total += nsel as u64;
        for &iu in &sel_buf[..nsel] {
            late.insert(li.orderkey[iu as usize]);
        }
        base = end;
    }
    Charge::hybrid(prof, n as u64 + sel_total, batches);
    Charge::probes(prof, sel_total, late.len() as u64 * 24);
    count_orders(cat, &late, prof)
}

/// Access-aware: full-column mask of late lines, then a gather-insert pass.
pub fn access_aware(cat: &Catalog, prof: &mut WorkProfile) -> Digest {
    let li = Lineitem::bind(cat);
    let n = li.len();
    let mask: Vec<bool> = (0..n).map(|i| li.commitdate[i] < li.receiptdate[i]).collect();
    let mut late = HashSet::new();
    for i in 0..n {
        if mask[i] {
            late.insert(li.orderkey[i]);
        }
    }
    Charge::access_aware(prof, n as u64, 2);
    Charge::probes(prof, mask.iter().filter(|&&m| m).count() as u64, late.len() as u64 * 24);
    count_orders(cat, &late, prof)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_strategies_agree() {
        let cat = wimpi_tpch::Generator::new(0.005).generate_catalog().unwrap();
        let mut p = WorkProfile::new();
        let dc = data_centric(&cat, &mut p);
        assert_eq!(dc, hybrid(&cat, &mut p));
        assert_eq!(dc, access_aware(&cat, &mut p));
        assert_eq!(dc.rows, 5, "all five priorities appear");
    }
}
