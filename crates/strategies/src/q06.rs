//! Q6 under the three paradigms: four conjunctive predicates, one sum.

use crate::common::{Charge, Lineitem, BATCH};
use crate::Digest;
use wimpi_engine::WorkProfile;
use wimpi_storage::{Catalog, Date32};

fn params() -> (i32, i32, i64, i64, i64) {
    (
        Date32::from_ymd(1994, 1, 1).0,
        Date32::from_ymd(1995, 1, 1).0,
        5,    // 0.05
        7,    // 0.07
        2400, // quantity < 24.00
    )
}

fn digest(revenue: i128, sel: u64) -> Digest {
    Digest { rows: 1, checksum: revenue + sel as i128 }
}

/// Data-centric: fused loop with short-circuit conjunction — the minimum
/// bytes touched, the maximum branches.
pub fn data_centric(cat: &Catalog, prof: &mut WorkProfile) -> Digest {
    let li = Lineitem::bind(cat);
    let (lo, hi, dlo, dhi, qmax) = params();
    let mut revenue = 0i128;
    let mut sel = 0u64;
    let mut evals = 0u64;
    for i in 0..li.len() {
        evals += 1;
        if li.shipdate[i] < lo || li.shipdate[i] >= hi {
            continue;
        }
        evals += 1;
        if li.discount[i] < dlo || li.discount[i] > dhi {
            continue;
        }
        evals += 1;
        if li.quantity[i] >= qmax {
            continue;
        }
        sel += 1;
        revenue += li.extendedprice[i] as i128 * li.discount[i] as i128;
    }
    Charge::data_centric(prof, evals + sel * 2);
    digest(revenue, sel)
}

/// Hybrid: per-batch selection vectors refined predicate by predicate.
pub fn hybrid(cat: &Catalog, prof: &mut WorkProfile) -> Digest {
    let li = Lineitem::bind(cat);
    let (lo, hi, dlo, dhi, qmax) = params();
    let mut revenue = 0i128;
    let mut sel_total = 0u64;
    let mut evals = 0u64;
    let mut batches = 0u64;
    let mut a = [0u32; BATCH];
    let mut b = [0u32; BATCH];
    let n = li.len();
    let mut base = 0;
    while base < n {
        let end = (base + BATCH).min(n);
        batches += 1;
        // Stage 1: date predicate over the whole batch.
        let mut na = 0;
        for i in base..end {
            a[na] = i as u32;
            na += usize::from(li.shipdate[i] >= lo && li.shipdate[i] < hi);
        }
        evals += (end - base) as u64;
        // Stage 2: discount over survivors.
        let mut nb = 0;
        for &iu in &a[..na] {
            let i = iu as usize;
            b[nb] = iu;
            nb += usize::from(li.discount[i] >= dlo && li.discount[i] <= dhi);
        }
        evals += na as u64;
        // Stage 3: quantity + accumulate.
        for &iu in &b[..nb] {
            let i = iu as usize;
            evals += 1;
            if li.quantity[i] < qmax {
                sel_total += 1;
                revenue += li.extendedprice[i] as i128 * li.discount[i] as i128;
            }
        }
        base = end;
    }
    Charge::hybrid(prof, evals + sel_total * 2, batches);
    digest(revenue, sel_total)
}

/// Access-aware: each predicate is a full sequential pass into a mask, then
/// one branch-free accumulation pass.
pub fn access_aware(cat: &Catalog, prof: &mut WorkProfile) -> Digest {
    let li = Lineitem::bind(cat);
    let (lo, hi, dlo, dhi, qmax) = params();
    let n = li.len();
    let mut mask: Vec<i64> = li.shipdate.iter().map(|&d| i64::from(d >= lo && d < hi)).collect();
    for i in 0..n {
        mask[i] &= i64::from(li.discount[i] >= dlo && li.discount[i] <= dhi);
    }
    for i in 0..n {
        mask[i] &= i64::from(li.quantity[i] < qmax);
    }
    let mut revenue = 0i128;
    let mut sel = 0u64;
    for i in 0..n {
        sel += mask[i] as u64;
        revenue += (li.extendedprice[i] * mask[i]) as i128 * li.discount[i] as i128;
    }
    Charge::access_aware(prof, n as u64, 4);
    digest(revenue, sel)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_strategies_agree() {
        let cat = wimpi_tpch::Generator::new(0.002).generate_catalog().unwrap();
        let mut p = WorkProfile::new();
        let dc = data_centric(&cat, &mut p);
        let hy = hybrid(&cat, &mut p);
        let aa = access_aware(&cat, &mut p);
        assert_eq!(dc, hy);
        assert_eq!(dc, aa);
        assert!(dc.checksum > 0, "some revenue must match the predicate");
    }

    #[test]
    fn matches_engine_q6() {
        let cat = wimpi_tpch::Generator::new(0.002).generate_catalog().unwrap();
        let (rel, _) = wimpi_queries::run(&wimpi_queries::query(6), &cat).unwrap();
        let (m, s) = rel.column("revenue").unwrap().as_decimal().unwrap();
        assert_eq!(s, 4);
        let mut p = WorkProfile::new();
        let dc = data_centric(&cat, &mut p);
        // Strip the selected-row term from the digest to compare revenue.
        let mut sel = 0i128;
        {
            let li = Lineitem::bind(&cat);
            let (lo, hi, dlo, dhi, qmax) = params();
            for i in 0..li.len() {
                if li.shipdate[i] >= lo
                    && li.shipdate[i] < hi
                    && (dlo..=dhi).contains(&li.discount[i])
                    && li.quantity[i] < qmax
                {
                    sel += 1;
                }
            }
        }
        assert_eq!(dc.checksum - sel, m[0] as i128, "strategy revenue must equal engine");
    }
}
