//! Q3 under the three paradigms: two joins (customer→orders→lineitem), a
//! grouped sum per order, top-10 by revenue.

use std::collections::HashMap;

use crate::common::{dict_col, i64_col, Charge, Lineitem, BATCH};
use crate::Digest;
use wimpi_engine::WorkProfile;
use wimpi_storage::{Catalog, Date32};

fn cutoff() -> i32 {
    Date32::from_ymd(1995, 3, 15).0
}

/// Shared build side: qualifying order keys (BUILDING customers, order
/// placed before the cutoff). The paradigms differ in the lineitem probe
/// pipeline, not the dimension builds.
fn qualifying_orders(cat: &Catalog, prof: &mut WorkProfile) -> HashMap<i64, ()> {
    let cust = cat.table("customer").expect("customer registered");
    let ckeys = i64_col(cust, "c_custkey");
    let seg = dict_col(cust, "c_mktsegment");
    let building: Vec<bool> = seg.values().iter().map(|v| v == "BUILDING").collect();
    let max_cust = ckeys.iter().copied().max().unwrap_or(0) as usize;
    let mut cust_ok = vec![false; max_cust + 1];
    for (i, &k) in ckeys.iter().enumerate() {
        cust_ok[k as usize] = building[seg.code(i) as usize];
    }
    let orders = cat.table("orders").expect("orders registered");
    let okeys = i64_col(orders, "o_orderkey");
    let ocust = i64_col(orders, "o_custkey");
    let odate = {
        match orders.column_by_name("o_orderdate").unwrap().as_ref() {
            wimpi_storage::Column::Date(v) => v.as_slice(),
            _ => unreachable!("o_orderdate is a date"),
        }
    };
    let cut = cutoff();
    let mut map = HashMap::new();
    for i in 0..okeys.len() {
        if odate[i] < cut && cust_ok[ocust[i] as usize] {
            map.insert(okeys[i], ());
        }
    }
    prof.cpu_ops += (ckeys.len() + okeys.len() * 2) as u64;
    prof.seq_read_bytes += (ckeys.len() * 12 + okeys.len() * 20) as u64;
    prof.hash_bytes = prof.hash_bytes.max(map.len() as u64 * 24);
    map
}

fn digest(revenue_by_order: &HashMap<i64, i128>) -> Digest {
    // Top 10 by revenue (exact sums, deterministic regardless of tie order).
    let mut revs: Vec<i128> = revenue_by_order.values().copied().collect();
    revs.sort_unstable_by(|a, b| b.cmp(a));
    revs.truncate(10);
    Digest {
        rows: revs.len() as u64,
        checksum: revs.iter().sum::<i128>() + revenue_by_order.len() as i128,
    }
}

/// Data-centric: fused probe loop.
pub fn data_centric(cat: &Catalog, prof: &mut WorkProfile) -> Digest {
    let li = Lineitem::bind(cat);
    let orders = qualifying_orders(cat, prof);
    let cut = cutoff();
    let mut groups: HashMap<i64, i128> = HashMap::new();
    let mut sel = 0u64;
    for i in 0..li.len() {
        if li.shipdate[i] > cut && orders.contains_key(&li.orderkey[i]) {
            sel += 1;
            *groups.entry(li.orderkey[i]).or_insert(0) +=
                li.extendedprice[i] as i128 * (100 - li.discount[i]) as i128;
        }
    }
    Charge::data_centric(prof, li.len() as u64 + sel * 2);
    Charge::probes(prof, li.len() as u64, orders.len() as u64 * 24);
    digest(&groups)
}

/// Hybrid: batch the date filter, probe survivors.
pub fn hybrid(cat: &Catalog, prof: &mut WorkProfile) -> Digest {
    let li = Lineitem::bind(cat);
    let orders = qualifying_orders(cat, prof);
    let cut = cutoff();
    let mut groups: HashMap<i64, i128> = HashMap::new();
    let mut sel_buf = [0u32; BATCH];
    let (mut probes, mut batches) = (0u64, 0u64);
    let n = li.len();
    let mut base = 0;
    while base < n {
        let end = (base + BATCH).min(n);
        batches += 1;
        let mut nsel = 0;
        for i in base..end {
            sel_buf[nsel] = i as u32;
            nsel += usize::from(li.shipdate[i] > cut);
        }
        for &iu in &sel_buf[..nsel] {
            let i = iu as usize;
            probes += 1;
            if orders.contains_key(&li.orderkey[i]) {
                *groups.entry(li.orderkey[i]).or_insert(0) +=
                    li.extendedprice[i] as i128 * (100 - li.discount[i]) as i128;
            }
        }
        base = end;
    }
    Charge::hybrid(prof, n as u64 + probes, batches);
    Charge::probes(prof, probes, orders.len() as u64 * 24);
    digest(&groups)
}

/// Access-aware: date mask pulled up over the whole column, then a probe
/// pass over the selection.
pub fn access_aware(cat: &Catalog, prof: &mut WorkProfile) -> Digest {
    let li = Lineitem::bind(cat);
    let orders = qualifying_orders(cat, prof);
    let cut = cutoff();
    let n = li.len();
    let sel: Vec<u32> = (0..n).filter(|&i| li.shipdate[i] > cut).map(|i| i as u32).collect();
    let mut groups: HashMap<i64, i128> = HashMap::new();
    for &iu in &sel {
        let i = iu as usize;
        if orders.contains_key(&li.orderkey[i]) {
            *groups.entry(li.orderkey[i]).or_insert(0) +=
                li.extendedprice[i] as i128 * (100 - li.discount[i]) as i128;
        }
    }
    Charge::access_aware(prof, n as u64, 2);
    Charge::probes(prof, sel.len() as u64, orders.len() as u64 * 24);
    digest(&groups)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_strategies_agree() {
        let cat = wimpi_tpch::Generator::new(0.005).generate_catalog().unwrap();
        let mut p = WorkProfile::new();
        let dc = data_centric(&cat, &mut p);
        assert_eq!(dc, hybrid(&cat, &mut p));
        assert_eq!(dc, access_aware(&cat, &mut p));
        assert!(dc.rows <= 10);
    }
}
