//! Q5 under the three paradigms: the deepest join chain (six tables), with
//! the customer-nation = supplier-nation equality constraint.

use std::collections::HashMap;

use crate::common::{date_col, dict_col, i64_col, Charge, Lineitem, BATCH};
use crate::Digest;
use wimpi_engine::WorkProfile;
use wimpi_storage::{Catalog, Date32};

fn window() -> (i32, i32) {
    (Date32::from_ymd(1994, 1, 1).0, Date32::from_ymd(1995, 1, 1).0)
}

/// Shared dimension builds: ASIA nation flags, dense supplier→nation and
/// customer→nation lookups, and the order window map orderkey → custkey.
struct Dims {
    asia: Vec<bool>,
    supp_nation: Vec<i16>,
    cust_nation: Vec<i16>,
    orders: HashMap<i64, i64>,
}

fn build_dims(cat: &Catalog, prof: &mut WorkProfile) -> Dims {
    let region = cat.table("region").expect("region registered");
    let rnames = dict_col(region, "r_name");
    let rkeys = i64_col(region, "r_regionkey");
    let asia_region: Vec<i64> =
        (0..region.num_rows()).filter(|&i| rnames.get(i) == "ASIA").map(|i| rkeys[i]).collect();
    let nation = cat.table("nation").expect("nation registered");
    let nkeys = i64_col(nation, "n_nationkey");
    let nregion = i64_col(nation, "n_regionkey");
    let max_nation = nkeys.iter().copied().max().unwrap_or(0) as usize;
    let mut asia = vec![false; max_nation + 1];
    for i in 0..nkeys.len() {
        asia[nkeys[i] as usize] = asia_region.contains(&nregion[i]);
    }
    let dense = |table: &str, key: &str, nat: &str| -> Vec<i16> {
        let t = cat.table(table).expect("dimension registered");
        let keys = i64_col(t, key);
        let nats = i64_col(t, nat);
        let max = keys.iter().copied().max().unwrap_or(0) as usize;
        let mut lut = vec![-1i16; max + 1];
        for i in 0..keys.len() {
            lut[keys[i] as usize] = nats[i] as i16;
        }
        lut
    };
    let supp_nation = dense("supplier", "s_suppkey", "s_nationkey");
    let cust_nation = dense("customer", "c_custkey", "c_nationkey");
    let orders_t = cat.table("orders").expect("orders registered");
    let okeys = i64_col(orders_t, "o_orderkey");
    let ocust = i64_col(orders_t, "o_custkey");
    let odate = date_col(orders_t, "o_orderdate");
    let (lo, hi) = window();
    let mut orders = HashMap::new();
    for i in 0..okeys.len() {
        if odate[i] >= lo && odate[i] < hi {
            orders.insert(okeys[i], ocust[i]);
        }
    }
    prof.cpu_ops += (okeys.len() * 2 + supp_nation.len() + cust_nation.len()) as u64;
    prof.seq_read_bytes += (okeys.len() * 20) as u64;
    prof.hash_bytes = prof.hash_bytes.max(orders.len() as u64 * 32);
    Dims { asia, supp_nation, cust_nation, orders }
}

fn digest(rev: &[i128]) -> Digest {
    Digest {
        rows: rev.iter().filter(|&&r| r > 0).count() as u64,
        checksum: rev.iter().enumerate().map(|(i, &r)| (i as i128 + 1) * r).sum(),
    }
}

#[inline]
fn probe(dims: &Dims, orderkey: i64, suppkey: i64, rev: &mut [i128], amount: i128) -> bool {
    if let Some(&custkey) = dims.orders.get(&orderkey) {
        let sn = dims.supp_nation[suppkey as usize];
        let cn = dims.cust_nation[custkey as usize];
        if sn >= 0 && sn == cn && dims.asia[sn as usize] {
            rev[sn as usize] += amount;
            return true;
        }
    }
    false
}

/// Data-centric: probe everything row by row.
pub fn data_centric(cat: &Catalog, prof: &mut WorkProfile) -> Digest {
    let li = Lineitem::bind(cat);
    let dims = build_dims(cat, prof);
    let mut rev = vec![0i128; dims.asia.len()];
    let mut hits = 0u64;
    for i in 0..li.len() {
        let amount = li.extendedprice[i] as i128 * (100 - li.discount[i]) as i128;
        hits += u64::from(probe(&dims, li.orderkey[i], li.suppkey[i], &mut rev, amount));
    }
    Charge::data_centric(prof, li.len() as u64 + hits * 2);
    Charge::probes(prof, li.len() as u64 * 2, dims.orders.len() as u64 * 32);
    digest(&rev)
}

/// Hybrid: batched probes with a staging selection vector of order hits.
pub fn hybrid(cat: &Catalog, prof: &mut WorkProfile) -> Digest {
    let li = Lineitem::bind(cat);
    let dims = build_dims(cat, prof);
    let mut rev = vec![0i128; dims.asia.len()];
    let mut sel_buf = [0u32; BATCH];
    let (mut probes, mut batches) = (0u64, 0u64);
    let n = li.len();
    let mut base = 0;
    while base < n {
        let end = (base + BATCH).min(n);
        batches += 1;
        // Stage 1: order-window membership (the most selective join).
        let mut nsel = 0;
        for i in base..end {
            sel_buf[nsel] = i as u32;
            nsel += usize::from(dims.orders.contains_key(&li.orderkey[i]));
        }
        probes += (end - base) as u64;
        // Stage 2: nation constraint + accumulate.
        for &iu in &sel_buf[..nsel] {
            let i = iu as usize;
            let amount = li.extendedprice[i] as i128 * (100 - li.discount[i]) as i128;
            probe(&dims, li.orderkey[i], li.suppkey[i], &mut rev, amount);
        }
        probes += nsel as u64;
        base = end;
    }
    Charge::hybrid(prof, n as u64 + probes, batches);
    Charge::probes(prof, probes, dims.orders.len() as u64 * 32);
    digest(&rev)
}

/// Access-aware: materialize the order-hit mask for the whole column first,
/// then a sequential accumulate pass over survivors.
pub fn access_aware(cat: &Catalog, prof: &mut WorkProfile) -> Digest {
    let li = Lineitem::bind(cat);
    let dims = build_dims(cat, prof);
    let n = li.len();
    let custkeys: Vec<i64> =
        (0..n).map(|i| dims.orders.get(&li.orderkey[i]).copied().unwrap_or(-1)).collect();
    let mut rev = vec![0i128; dims.asia.len()];
    for i in 0..n {
        let ck = custkeys[i];
        if ck < 0 {
            continue;
        }
        let sn = dims.supp_nation[li.suppkey[i] as usize];
        let cn = dims.cust_nation[ck as usize];
        if sn >= 0 && sn == cn && dims.asia[sn as usize] {
            rev[sn as usize] += li.extendedprice[i] as i128 * (100 - li.discount[i]) as i128;
        }
    }
    Charge::access_aware(prof, n as u64, 3);
    Charge::probes(prof, n as u64 * 2, dims.orders.len() as u64 * 32);
    digest(&rev)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_strategies_agree() {
        let cat = wimpi_tpch::Generator::new(0.005).generate_catalog().unwrap();
        let mut p = WorkProfile::new();
        let dc = data_centric(&cat, &mut p);
        assert_eq!(dc, hybrid(&cat, &mut p));
        assert_eq!(dc, access_aware(&cat, &mut p));
    }
}
